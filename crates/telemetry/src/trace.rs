//! Causal event tracing with logical timestamps.
//!
//! Where the metrics layer (the crate root) *aggregates* — counters,
//! percentile histograms, wall-clock spans — this module records the
//! *sequence*: typed events stamped with a logical time
//! [`LogicalTime`]` = (tick, shard, seq)` so a run can be replayed as a
//! timeline (which admission triggered a shed cascade, when a shard's
//! batch folded at a barrier, where a crash was re-replayed).
//!
//! ## Determinism contract
//!
//! Events carry the same [`Class`] split as metrics:
//!
//! * [`Class::Det`] events (admissions, departures, ShardMsg
//!   send/fold, crash/restore, shed, retry re-admission) are a pure
//!   function of the input trace. After sorting by
//!   `(run, logical time, kind)` and collapsing the exact duplicates
//!   produced by crash re-replay, the Det stream is **byte-identical at
//!   any worker count** ([`TraceSnapshot::det_lines`]).
//! * [`Class::Overlay`] events (work-steals, B&B subtree splits and
//!   incumbent publications) depend on scheduling and are excluded from
//!   the Det stream and from stable artifacts.
//!
//! ## Overhead
//!
//! Tracing has its own gate, *on top of* the metrics gate: while
//! inactive (the default, including under plain `--telemetry`) every
//! [`record`] call is one relaxed atomic load and a branch. When active,
//! events go to a bounded per-thread ring buffer ([`TraceBuf`]) — no
//! global contention on the hot path, oldest events dropped (and
//! counted) on overflow.
//!
//! ```
//! use snsp_telemetry::trace::{self, LogicalTime, TraceEventKind};
//! use snsp_telemetry::Class;
//!
//! trace::start(1024, false);
//! trace::record(
//!     Class::Det,
//!     7,
//!     LogicalTime { tick: 1, shard: 0, seq: 0 },
//!     TraceEventKind::Admit { tenant: 3, new_procs: 2, reused_procs: 1 },
//! );
//! let snap = trace::stop();
//! assert_eq!(snap.events.len(), 1);
//! assert_eq!(snap.det_lines().len(), 1);
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::Class;

/// Logical timestamp of a trace event: the replay tick (barrier
/// number), the shard (or worker token for overlay events) and the
/// per-`(tick, shard)` emission sequence number. Totally ordered; the
/// order is worker-count-independent for Det-class events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogicalTime {
    /// Barrier/tick number within the run (0 before the first barrier).
    pub tick: u64,
    /// Shard index for Det events; worker/thread token for overlay.
    pub shard: u32,
    /// Emission order within `(tick, shard)`; folds use the global fold
    /// index so coordinator-synthesized messages stay distinct.
    pub seq: u32,
}

impl LogicalTime {
    /// The start-of-tick marker time: sorts before every event of the
    /// tick (ties broken by [`TraceEventKind`] variant order).
    pub const fn tick_start(tick: u64) -> Self {
        LogicalTime {
            tick,
            shard: 0,
            seq: 0,
        }
    }

    /// The end-of-tick marker time: sorts after every event of the tick.
    pub const fn tick_end(tick: u64) -> Self {
        LogicalTime {
            tick,
            shard: u32::MAX,
            seq: u32::MAX,
        }
    }
}

/// What happened. Variant declaration order is the sort tiebreak for
/// events sharing a [`LogicalTime`], so `TickStart` is declared first
/// (it shares `(tick, 0, 0)` with the first event of shard 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceEventKind {
    /// A replay barrier opened (Det). `events` = batched trace events
    /// folded at this barrier.
    TickStart {
        /// Trace events drained into this tick's shard batches.
        events: u64,
    },
    /// A tenant was admitted on its home shard (Det).
    Admit {
        /// Tenant id from the arrival trace.
        tenant: u64,
        /// Processors newly enrolled for it.
        new_procs: u64,
        /// Processors reused from the shard's warm pool.
        reused_procs: u64,
    },
    /// A tenant's admission was rejected (Det).
    Reject {
        /// Tenant id from the arrival trace.
        tenant: u64,
    },
    /// A tenant departed and released its processors (Det).
    Depart {
        /// Tenant id from the arrival trace.
        tenant: u64,
    },
    /// A tenant was evicted (consolidation or fault remap) (Det).
    Evict {
        /// Tenant id from the arrival trace.
        tenant: u64,
    },
    /// A shard emitted a `ShardMsg`-style message toward the
    /// coordinator barrier (Det). `msg` names the message kind.
    MsgSend {
        /// Static message-kind label (e.g. `"admitted"`).
        msg: &'static str,
    },
    /// The coordinator folded one message at the barrier (Det). The
    /// event's `seq` is the global fold index within the tick.
    MsgFold {
        /// Static message-kind label (e.g. `"admitted"`).
        msg: &'static str,
    },
    /// A shard crashed under fault injection (Det).
    Crash {
        /// The crashed shard.
        shard: u64,
    },
    /// A crashed shard was restored from checkpoint and its batch
    /// re-replayed (Det).
    Restore {
        /// The restored shard.
        shard: u64,
        /// Trace events re-replayed from the checkpoint.
        replayed: u64,
    },
    /// Graceful degradation shed a tenant under capacity pressure (Det).
    Shed {
        /// The shed tenant.
        tenant: u64,
    },
    /// A previously rejected/shed tenant was re-admitted from the retry
    /// queue (Det).
    RetryAdmit {
        /// The re-admitted tenant.
        tenant: u64,
        /// Retry attempt number (1-based).
        attempt: u64,
    },
    /// A replay barrier closed (Det). Declared after every intra-tick
    /// variant; its time is [`LogicalTime::tick_end`].
    TickEnd,
    /// The parallel branch-and-bound split a subtree off for donation
    /// (Overlay — scheduling-dependent).
    Split {
        /// Search depth of the donated prefix.
        depth: u64,
    },
    /// A pool worker stole a task enqueued by another thread (Overlay).
    Steal {
        /// The stealing worker's process-unique thread token.
        worker: u64,
    },
    /// The branch-and-bound published a new incumbent (Overlay — the
    /// publication *order* is scheduling-dependent; the final incumbent
    /// is not).
    Incumbent {
        /// New incumbent cost, as bits (`f64::to_bits`) so the event is
        /// `Eq`/`Ord`.
        cost_bits: u64,
    },
}

impl TraceEventKind {
    /// Canonical label + detail rendering used by the Det stream and
    /// the exporters. Deterministic: no wall-clock, no addresses.
    pub fn describe(&self) -> (&'static str, String) {
        match *self {
            TraceEventKind::TickStart { events } => ("tick_start", format!("events={events}")),
            TraceEventKind::Admit {
                tenant,
                new_procs,
                reused_procs,
            } => (
                "admit",
                format!("tenant={tenant} new={new_procs} reuse={reused_procs}"),
            ),
            TraceEventKind::Reject { tenant } => ("reject", format!("tenant={tenant}")),
            TraceEventKind::Depart { tenant } => ("depart", format!("tenant={tenant}")),
            TraceEventKind::Evict { tenant } => ("evict", format!("tenant={tenant}")),
            TraceEventKind::MsgSend { msg } => ("msg_send", format!("msg={msg}")),
            TraceEventKind::MsgFold { msg } => ("msg_fold", format!("msg={msg}")),
            TraceEventKind::Crash { shard } => ("crash", format!("shard={shard}")),
            TraceEventKind::Restore { shard, replayed } => {
                ("restore", format!("shard={shard} replayed={replayed}"))
            }
            TraceEventKind::Shed { tenant } => ("shed", format!("tenant={tenant}")),
            TraceEventKind::RetryAdmit { tenant, attempt } => {
                ("retry_admit", format!("tenant={tenant} attempt={attempt}"))
            }
            TraceEventKind::TickEnd => ("tick_end", String::new()),
            TraceEventKind::Split { depth } => ("split", format!("depth={depth}")),
            TraceEventKind::Steal { worker } => ("steal", format!("worker={worker}")),
            TraceEventKind::Incumbent { cost_bits } => {
                ("incumbent", format!("cost={}", f64::from_bits(cost_bits)))
            }
        }
    }
}

/// One recorded event. `run` is the campaign-level run discriminator
/// (the per-trace seed) so concurrent replays in one campaign do not
/// interleave their logical clocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Run discriminator (per-trace seed within a campaign).
    pub run: u64,
    /// Logical timestamp.
    pub time: LogicalTime,
    /// Determinism class (Det enters the stable stream, Overlay never).
    pub class: Class,
    /// What happened.
    pub kind: TraceEventKind,
    /// Microseconds since [`start`], when the wall-clock overlay was
    /// requested; 0.0 otherwise. Never part of the Det stream.
    pub wall_us: f64,
}

impl TraceEvent {
    /// The deterministic total order: `(run, time, kind)`. `wall_us`
    /// and `class` are deliberately excluded.
    fn sort_key(&self) -> (u64, LogicalTime, TraceEventKind) {
        (self.run, self.time, self.kind)
    }
}

/// A bounded single-producer ring of events. One per recording thread;
/// overflow drops the **oldest** event and counts it, so the tail (what
/// the flight recorder wants) survives.
pub struct TraceBuf {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuf {
    fn new(capacity: usize) -> Self {
        TraceBuf {
            events: std::collections::VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    fn clear(&mut self, capacity: usize) {
        self.events.clear();
        self.capacity = capacity;
        self.dropped = 0;
    }
}

static FLIGHT_PATH: Mutex<Option<std::path::PathBuf>> = Mutex::new(None);

/// Sets (or clears) the flight-recorder dump destination. When a
/// consumer detects a failure mid-run (invariant audit, contained pool
/// panic) it writes its crash-dump artifact here; unset, dumps go to
/// stderr.
pub fn set_flight_path(path: Option<std::path::PathBuf>) {
    *FLIGHT_PATH.lock().unwrap_or_else(|e| e.into_inner()) = path;
}

/// The configured flight-recorder dump destination, if any.
pub fn flight_path() -> Option<std::path::PathBuf> {
    FLIGHT_PATH
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static WALL: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static RINGS: Mutex<Vec<Arc<Mutex<TraceBuf>>>> = Mutex::new(Vec::new());
static EPOCH: Mutex<Option<Instant>> = Mutex::new(None);

/// Default per-thread ring capacity: generous enough that CI-scale
/// campaigns record with `dropped == 0` (asserted by the trace tests —
/// an overflowing ring would break cross-worker-count byte-identity).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

thread_local! {
    static LOCAL: RefCell<Option<Arc<Mutex<TraceBuf>>>> = const { RefCell::new(None) };
}

fn rings() -> std::sync::MutexGuard<'static, Vec<Arc<Mutex<TraceBuf>>>> {
    RINGS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether tracing is currently active. Hooks call this first; while
/// inactive a [`record`] is one relaxed load + branch.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Starts a trace session: clears every registered ring, sets the
/// per-thread capacity and (optionally) the wall-clock overlay, then
/// opens the gate. Sessions do not nest; callers serialize via the
/// metrics [`capture`](crate::capture) session or their own discipline.
pub fn start(capacity: usize, wall: bool) {
    for ring in rings().iter() {
        ring.lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear(capacity);
    }
    CAPACITY.store(capacity, Ordering::SeqCst);
    *EPOCH.lock().unwrap_or_else(|e| e.into_inner()) = Some(Instant::now());
    WALL.store(wall, Ordering::SeqCst);
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Closes the gate and returns the merged, deterministically sorted
/// snapshot of every thread's ring.
pub fn stop() -> TraceSnapshot {
    ACTIVE.store(false, Ordering::SeqCst);
    snapshot_now()
}

/// Non-destructive merged snapshot (rings keep their contents) — the
/// flight recorder reads this mid-run, at a barrier, without ending the
/// session.
pub fn snapshot_now() -> TraceSnapshot {
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for ring in rings().iter() {
        let ring = ring.lock().unwrap_or_else(|e| e.into_inner());
        events.extend(ring.events.iter().copied());
        dropped += ring.dropped;
    }
    events.sort_by(|a, b| {
        a.sort_key()
            .cmp(&b.sort_key())
            .then(a.wall_us.total_cmp(&b.wall_us))
    });
    TraceSnapshot { events, dropped }
}

/// Records one event (no-op while inactive). The caller supplies the
/// logical timestamp — tracing never invents ordering of its own.
#[inline]
pub fn record(class: Class, run: u64, time: LogicalTime, kind: TraceEventKind) {
    if !active() {
        return;
    }
    let wall_us = if WALL.load(Ordering::Relaxed) {
        EPOCH
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map_or(0.0, |t0| t0.elapsed().as_nanos() as f64 / 1e3)
    } else {
        0.0
    };
    let ev = TraceEvent {
        run,
        time,
        class,
        kind,
        wall_us,
    };
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let ring = local.get_or_insert_with(|| {
            let ring = Arc::new(Mutex::new(TraceBuf::new(CAPACITY.load(Ordering::SeqCst))));
            rings().push(Arc::clone(&ring));
            ring
        });
        ring.lock().unwrap_or_else(|e| e.into_inner()).push(ev);
    });
}

/// A merged, `(run, time, kind)`-sorted copy of every thread's ring.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// All events, deterministically sorted.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow across all threads. A nonzero value
    /// voids the cross-worker-count byte-identity guarantee (different
    /// thread counts shard the rings differently).
    pub dropped: u64,
}

impl TraceSnapshot {
    /// The deterministic core: Det-class events only, with the exact
    /// `(run, time, kind)` duplicates produced by crash re-replay
    /// collapsed (recovery replays the victim's batch byte-identically,
    /// so the discarded attempt and the re-replay record the same
    /// events; the `Crash`/`Restore` markers themselves are recorded
    /// once, by the coordinator).
    pub fn det_events(&self) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = Vec::with_capacity(self.events.len());
        for ev in &self.events {
            if ev.class != Class::Det {
                continue;
            }
            if out.last().is_some_and(|p| p.sort_key() == ev.sort_key()) {
                continue;
            }
            out.push(*ev);
        }
        out
    }

    /// The Det stream rendered as canonical text lines — the
    /// byte-identity surface pinned by tests and CI. One event per
    /// line: `r=<run> t=<tick> s=<shard> q=<seq> <label> <detail>`.
    pub fn det_lines(&self) -> Vec<String> {
        self.det_events()
            .iter()
            .map(|ev| {
                let (label, detail) = ev.kind.describe();
                let mut line = format!(
                    "r={} t={} s={} q={} {label}",
                    ev.run, ev.time.tick, ev.time.shard, ev.time.seq
                );
                if !detail.is_empty() {
                    line.push(' ');
                    line.push_str(&detail);
                }
                line
            })
            .collect()
    }

    /// The largest tick stamped on any event (0 when empty).
    pub fn max_tick(&self) -> u64 {
        self.events.iter().map(|e| e.time.tick).max().unwrap_or(0)
    }

    /// The flight-recorder window: every event whose tick lies within
    /// the last `k` ticks (ticks `> max_tick - k`), preserving order.
    pub fn tail_window(&self, k: u64) -> Vec<TraceEvent> {
        let cutoff = self.max_tick().saturating_sub(k);
        self.events
            .iter()
            .filter(|e| e.time.tick > cutoff)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(run: u64, tick: u64, shard: u32, seq: u32, kind: TraceEventKind) {
        record(Class::Det, run, LogicalTime { tick, shard, seq }, kind);
    }

    #[test]
    fn inactive_record_is_inert() {
        let _guard = crate::test_session();
        assert!(!active());
        det(1, 1, 0, 0, TraceEventKind::Reject { tenant: 1 });
        start(64, false);
        let snap = stop();
        assert!(snap.events.is_empty());
    }

    #[test]
    fn merge_sorts_and_dedups_reraplay_duplicates() {
        let _guard = crate::test_session();
        start(64, false);
        // Out-of-order emission, including an exact duplicate (crash
        // re-replay) and an overlay event.
        det(1, 2, 1, 0, TraceEventKind::Depart { tenant: 4 });
        det(1, 1, 0, 0, TraceEventKind::TickStart { events: 2 });
        det(
            1,
            1,
            0,
            0,
            TraceEventKind::Admit {
                tenant: 9,
                new_procs: 1,
                reused_procs: 0,
            },
        );
        det(
            1,
            1,
            0,
            0,
            TraceEventKind::Admit {
                tenant: 9,
                new_procs: 1,
                reused_procs: 0,
            },
        );
        record(
            Class::Overlay,
            1,
            LogicalTime {
                tick: 0,
                shard: 3,
                seq: 0,
            },
            TraceEventKind::Steal { worker: 3 },
        );
        let snap = stop();
        assert_eq!(snap.events.len(), 5);
        assert_eq!(snap.dropped, 0);
        let lines = snap.det_lines();
        assert_eq!(
            lines,
            vec![
                "r=1 t=1 s=0 q=0 tick_start events=2".to_string(),
                "r=1 t=1 s=0 q=0 admit tenant=9 new=1 reuse=0".to_string(),
                "r=1 t=2 s=1 q=0 depart tenant=4".to_string(),
            ]
        );
    }

    #[test]
    fn tick_markers_bracket_the_tick() {
        let _guard = crate::test_session();
        start(64, false);
        det(
            1,
            1,
            0,
            0,
            TraceEventKind::Admit {
                tenant: 1,
                new_procs: 1,
                reused_procs: 0,
            },
        );
        record(
            Class::Det,
            1,
            LogicalTime::tick_start(1),
            TraceEventKind::TickStart { events: 1 },
        );
        record(
            Class::Det,
            1,
            LogicalTime::tick_end(1),
            TraceEventKind::TickEnd,
        );
        let lines = stop().det_lines();
        assert!(lines[0].contains("tick_start"), "{lines:?}");
        assert!(lines[2].contains("tick_end"), "{lines:?}");
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let _guard = crate::test_session();
        start(2, false);
        for i in 0..5u64 {
            det(1, i + 1, 0, 0, TraceEventKind::Reject { tenant: i });
        }
        let snap = stop();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.dropped, 3);
        // The tail survives.
        assert_eq!(snap.events[1].time.tick, 5);
    }

    #[test]
    fn tail_window_keeps_last_k_ticks() {
        let _guard = crate::test_session();
        start(64, false);
        for tick in 1..=10u64 {
            det(1, tick, 0, 0, TraceEventKind::Reject { tenant: tick });
        }
        let snap = stop();
        assert_eq!(snap.max_tick(), 10);
        let tail = snap.tail_window(3);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].time.tick, 8);
    }

    #[test]
    fn wall_overlay_is_monotone_when_requested() {
        let _guard = crate::test_session();
        start(64, true);
        det(1, 1, 0, 0, TraceEventKind::Reject { tenant: 1 });
        det(1, 1, 0, 1, TraceEventKind::Reject { tenant: 2 });
        let snap = stop();
        assert!(snap.events[0].wall_us >= 0.0);
        assert!(snap.events[1].wall_us >= snap.events[0].wall_us);
    }
}
