//! # snsp-sweep — parallel campaign subsystem
//!
//! The paper's results are whole scenario grids: feasibility walls and
//! cost curves swept over N, α and platform parameters. This crate turns
//! such a grid into a **campaign**: the cross product
//! `scenario point × heuristic × seed` flattened into independent jobs,
//! drained by a work-stealing `std::thread::scope` pool, and folded by a
//! typed sink into a versioned, machine-readable `BENCH_sweep.json`.
//!
//! Three guarantees:
//!
//! * **Scheduling-independent determinism** — every job derives its RNG
//!   from its grid coordinates ([`solve_seeded`] under the hood), and
//!   aggregation runs in grid order, so the stable report is
//!   byte-identical at any worker count.
//! * **Machine-readable output** — schema v1 (see [`sink`]) is written
//!   and validated by a hand-rolled serializer/parser pair ([`json`],
//!   [`schema`]); the offline vendor set has no serde.
//! * **Exact reference** — a campaign can carry a branch-and-bound
//!   reference column on small points ([`ReferenceConfig`]), reporting
//!   `optimal = false` whenever the node budget truncated the search.
//!
//! ```
//! use snsp_gen::ScenarioParams;
//! use snsp_sweep::{run_campaign, Campaign, PointSpec};
//!
//! let campaign = Campaign::new(
//!     "demo",
//!     (10..=20)
//!         .step_by(5)
//!         .map(|n| PointSpec::new(n.to_string(), ScenarioParams::paper(n, 0.9)))
//!         .collect(),
//!     3,
//! );
//! let report = run_campaign(&campaign);
//! assert_eq!(report.points.len(), 3);
//! snsp_sweep::validate_report(&report.render_json(true)).unwrap();
//! ```
//!
//! [`solve_seeded`]: snsp_core::heuristics::solve_seeded

#![warn(missing_docs)]

pub mod campaign;
pub mod diff;
pub mod json;
pub mod schema;
pub mod sink;
pub mod tracefile;

/// The work-stealing executors (re-exported from [`snsp_core::pool`],
/// where they moved so that `snsp-solver` — a dependency of this crate —
/// can run its parallel branch-and-bound on the same pool).
pub use snsp_core::pool;

pub use campaign::{run_campaign, Campaign, PointSpec, ReferenceConfig, PIPELINE_SEED_STRIDE};
pub use diff::{diff_reports, DiffEntry, DiffKind, DiffOptions, DiffReport};
pub use json::Json;
pub use pool::run_jobs;
pub use schema::{
    validate_chaos_report, validate_perf_report, validate_refine_report, validate_report,
    validate_serve_report, validate_telemetry_report, validate_trace_report, CHAOS_SCHEMA_VERSION,
    PERF_SCHEMA_VERSION, REFINE_SCHEMA_VERSION, SERVE_SCHEMA_VERSION, SERVE_SCHEMA_VERSION_MIN,
    TELEMETRY_SCHEMA_VERSION, TRACE_SCHEMA_VERSION,
};
pub use sink::{
    CampaignReport, HeurStats, PhaseTiming, PointReport, ReferenceStats, SCHEMA_VERSION,
};
pub use tracefile::{chrome_trace_json, trace_json};
