//! Campaign configuration and execution.
//!
//! A [`Campaign`] is a grid of scenario points × heuristics × seeds,
//! flattened into independent jobs and executed on the work-stealing
//! pool. Every job is a pure function of its grid coordinates: the
//! instance comes from `snsp_gen::generate(params, shape, seed)` and the
//! pipeline RNG from [`solve_seeded`] with a seed derived from the
//! scenario seed alone, exactly as the seed repository's serial loop did.
//! Aggregation happens in grid order after the pool drains, so the
//! resulting [`CampaignReport`] is identical at
//! every worker count.

use std::time::Instant;

use snsp_core::heuristics::{all_heuristics, solve_seeded, Heuristic, PipelineOptions};
use snsp_core::platform::Catalog;
use snsp_gen::{generate, ScenarioParams, TreeShape};
use snsp_solver::{solve_exact, BranchBoundConfig};

use crate::pool::run_jobs;
use crate::sink::{CampaignReport, HeurStats, PhaseTiming, PointReport, ReferenceStats};

/// The multiplier turning a scenario seed into the pipeline RNG seed
/// (kept identical to the seed repository's serial runner so calibrated
/// expectations — e.g. the N = 140 feasibility wall — are preserved).
pub const PIPELINE_SEED_STRIDE: u64 = 0x9E37_79B9;

/// One cell of the scenario grid: a labelled parameter set.
#[derive(Debug, Clone)]
pub struct PointSpec {
    /// Row label in tables and in the JSON report (e.g. `"60"` for N=60).
    pub label: String,
    /// Generator parameters for this point.
    pub params: ScenarioParams,
    /// Tree shape drawn at this point.
    pub shape: TreeShape,
}

impl PointSpec {
    /// A point with the default random tree shape.
    pub fn new(label: impl Into<String>, params: ScenarioParams) -> Self {
        PointSpec {
            label: label.into(),
            params,
            shape: TreeShape::Random,
        }
    }
}

/// Exact-solver reference column: run the branch-and-bound on every seed
/// of every small-enough point and report the mean optimum next to the
/// heuristics.
#[derive(Debug, Clone, Copy)]
pub struct ReferenceConfig {
    /// Only points with `n_ops <= max_ops` get a reference column (the
    /// B&B blows up beyond ~20 operators, as the paper observed of CPLEX).
    pub max_ops: usize,
    /// Search-node budget per instance; exhausting it demotes the column
    /// to `optimal = false`.
    pub node_budget: u64,
    /// Branch-and-bound worker threads per reference job (`<= 1` =
    /// serial). An execution knob, not a semantic one: the optimum is
    /// worker-count-independent, so it is *not* echoed in the report.
    pub workers: usize,
}

impl Default for ReferenceConfig {
    fn default() -> Self {
        ReferenceConfig {
            max_ops: 20,
            node_budget: 500_000,
            workers: 1,
        }
    }
}

impl ReferenceConfig {
    fn eligible(&self, point: &PointSpec) -> bool {
        point.params.n_ops <= self.max_ops
    }
}

/// A full campaign: the job grid plus execution knobs.
pub struct Campaign {
    /// Campaign identifier (becomes `"campaign"` in the JSON report).
    pub id: String,
    /// Scenario points (grid rows).
    pub points: Vec<PointSpec>,
    /// Heuristics to evaluate at every point (grid columns).
    pub heuristics: Vec<Box<dyn Heuristic>>,
    /// Seeds `0..seeds` evaluated at every (point, heuristic) cell.
    pub seeds: u64,
    /// Pipeline options shared by every job.
    pub opts: PipelineOptions,
    /// Replaces the generated platform catalog in every job (e.g.
    /// `Catalog::homogeneous` for the paper's CONSTR-HOM comparison).
    pub catalog_override: Option<Catalog>,
    /// Optional exact-solver reference column.
    pub reference: Option<ReferenceConfig>,
    /// Worker threads; `None` uses `std::thread::available_parallelism`.
    pub workers: Option<usize>,
}

impl Campaign {
    /// A campaign over all six paper heuristics with default options.
    pub fn new(id: impl Into<String>, points: Vec<PointSpec>, seeds: u64) -> Self {
        Campaign {
            id: id.into(),
            points,
            heuristics: all_heuristics(),
            seeds,
            opts: PipelineOptions::default(),
            catalog_override: None,
            reference: None,
            workers: None,
        }
    }

    /// Overrides the heuristic set.
    pub fn with_heuristics(mut self, heuristics: Vec<Box<dyn Heuristic>>) -> Self {
        self.heuristics = heuristics;
        self
    }

    /// Overrides the pipeline options.
    pub fn with_opts(mut self, opts: PipelineOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Adds an exact-solver reference column.
    pub fn with_reference(mut self, reference: ReferenceConfig) -> Self {
        self.reference = Some(reference);
        self
    }

    /// Replaces the platform catalog in every generated instance.
    pub fn with_catalog(mut self, catalog: Catalog) -> Self {
        self.catalog_override = Some(catalog);
        self
    }

    /// Pins the worker count (1 = serial baseline). A request for 0
    /// workers clamps to 1: a campaign always makes progress, rather than
    /// depending on whatever an empty pool would do.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    fn resolved_workers(&self) -> usize {
        self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
    }
}

/// Outcome of one heuristic job: `(cost, proc_count)` when feasible.
type HeurOutcome = Option<(u64, usize)>;

/// Outcome of one reference (B&B) job.
#[derive(Debug, Clone, Copy)]
struct RefOutcome {
    cost: Option<u64>,
    optimal: bool,
}

enum JobOutcome {
    Heur(HeurOutcome),
    Ref(RefOutcome),
}

/// Runs the campaign and aggregates a [`CampaignReport`].
///
/// The job grid is `points × heuristics × seeds`, followed by
/// `eligible-reference-points × seeds` exact-solver jobs, all drained by
/// one pool invocation so reference work steals idle workers too.
pub fn run_campaign(campaign: &Campaign) -> CampaignReport {
    let t0 = Instant::now();
    let n_points = campaign.points.len();
    let n_heur = campaign.heuristics.len();
    let n_seeds = campaign.seeds as usize;
    let heur_jobs = n_points * n_heur * n_seeds;
    let ref_points: Vec<usize> = campaign
        .reference
        .map(|r| {
            (0..n_points)
                .filter(|&p| r.eligible(&campaign.points[p]))
                .collect()
        })
        .unwrap_or_default();
    let total_jobs = heur_jobs + ref_points.len() * n_seeds;
    let workers = campaign.resolved_workers();
    let flatten_s = t0.elapsed().as_secs_f64();

    let t_run = Instant::now();
    let outcomes = run_jobs(total_jobs, workers, |job| {
        if job < heur_jobs {
            let point = &campaign.points[job / (n_heur * n_seeds)];
            let heur = &campaign.heuristics[(job / n_seeds) % n_heur];
            let seed = (job % n_seeds) as u64;
            let inst = instantiate(campaign, point, seed);
            let outcome = solve_seeded(
                heur.as_ref(),
                &inst,
                seed.wrapping_mul(PIPELINE_SEED_STRIDE),
                &campaign.opts,
            )
            .ok()
            .map(|s| (s.cost, s.mapping.proc_count()));
            JobOutcome::Heur(outcome)
        } else {
            let rel = job - heur_jobs;
            let point = &campaign.points[ref_points[rel / n_seeds]];
            let seed = (rel % n_seeds) as u64;
            let inst = instantiate(campaign, point, seed);
            let reference = campaign.reference.expect("reference jobs imply a config");
            let exact = solve_exact(
                &inst,
                &BranchBoundConfig {
                    node_budget: reference.node_budget,
                    upper_bound: None,
                    workers: reference.workers,
                },
            );
            JobOutcome::Ref(RefOutcome {
                cost: exact.mapping.is_some().then_some(exact.cost),
                optimal: exact.optimal,
            })
        }
    });
    let run_s = t_run.elapsed().as_secs_f64();

    let t_agg = Instant::now();
    let points = aggregate(campaign, &outcomes, heur_jobs, &ref_points);
    let aggregate_s = t_agg.elapsed().as_secs_f64();

    CampaignReport {
        campaign: campaign.id.clone(),
        seeds: campaign.seeds,
        heuristic_names: campaign.heuristics.iter().map(|h| h.name()).collect(),
        reference: campaign.reference,
        config_points: campaign.points.clone(),
        points,
        timing: Some(PhaseTiming {
            workers,
            jobs: total_jobs,
            flatten_s,
            run_s,
            aggregate_s,
            total_s: t0.elapsed().as_secs_f64(),
        }),
    }
}

fn instantiate(campaign: &Campaign, point: &PointSpec, seed: u64) -> snsp_core::Instance {
    let mut inst = generate(&point.params, point.shape, seed);
    if let Some(catalog) = &campaign.catalog_override {
        inst.platform.catalog = catalog.clone();
    }
    inst
}

/// The typed sink pass: folds the flat outcome vector back into
/// per-point, per-heuristic statistics, in grid order.
fn aggregate(
    campaign: &Campaign,
    outcomes: &[JobOutcome],
    heur_jobs: usize,
    ref_points: &[usize],
) -> Vec<PointReport> {
    let n_heur = campaign.heuristics.len();
    let n_seeds = campaign.seeds as usize;
    campaign
        .points
        .iter()
        .enumerate()
        .map(|(p, point)| {
            let heuristics = campaign
                .heuristics
                .iter()
                .enumerate()
                .map(|(h, heur)| {
                    let cells: Vec<(u64, usize)> = (0..n_seeds)
                        .filter_map(|s| match &outcomes[(p * n_heur + h) * n_seeds + s] {
                            JobOutcome::Heur(o) => *o,
                            JobOutcome::Ref(_) => unreachable!("heuristic job range"),
                        })
                        .collect();
                    HeurStats::from_outcomes(heur.name(), n_seeds, &cells)
                })
                .collect();
            let reference = ref_points.iter().position(|&rp| rp == p).map(|rel| {
                let runs: Vec<RefOutcome> = (0..n_seeds)
                    .map(|s| match &outcomes[heur_jobs + rel * n_seeds + s] {
                        JobOutcome::Ref(r) => *r,
                        JobOutcome::Heur(_) => unreachable!("reference job range"),
                    })
                    .collect();
                let solved: Vec<u64> = runs.iter().filter_map(|r| r.cost).collect();
                ReferenceStats {
                    runs: runs.len(),
                    solved: solved.len(),
                    mean_cost: (!solved.is_empty())
                        .then(|| solved.iter().sum::<u64>() as f64 / solved.len() as f64),
                    optimal: runs.iter().all(|r| r.optimal),
                }
            });
            PointReport {
                label: point.label.clone(),
                n_ops: point.params.n_ops,
                alpha: point.params.alpha,
                heuristics,
                reference,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign(workers: usize) -> Campaign {
        let points = vec![
            PointSpec::new("10", ScenarioParams::paper(10, 0.9)),
            PointSpec::new("14", ScenarioParams::paper(14, 1.3)),
        ];
        Campaign::new("unit", points, 3).with_workers(workers)
    }

    #[test]
    fn report_shape_matches_grid() {
        let report = run_campaign(&small_campaign(2));
        assert_eq!(report.campaign, "unit");
        assert_eq!(report.points.len(), 2);
        for point in &report.points {
            assert_eq!(point.heuristics.len(), 6);
            for h in &point.heuristics {
                assert_eq!(h.runs, 3);
                assert!(h.feasible <= h.runs);
            }
            assert!(point.reference.is_none());
        }
    }

    #[test]
    fn zero_workers_clamps_to_serial() {
        // Pin the contract: `with_workers(0)` must behave exactly like an
        // explicit serial run, not fall through to the pool's own
        // clamping (or worse, a stalled empty pool).
        let campaign = small_campaign(0);
        assert_eq!(campaign.workers, Some(1));
        let clamped = run_campaign(&campaign);
        let serial = run_campaign(&small_campaign(1));
        assert_eq!(clamped.render_json(false), serial.render_json(false));
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let serial = run_campaign(&small_campaign(1));
        let parallel = run_campaign(&small_campaign(4));
        assert_eq!(serial.render_json(false), parallel.render_json(false));
    }

    #[test]
    fn reference_column_covers_small_points_only() {
        let points = vec![
            PointSpec::new("8", ScenarioParams::paper(8, 0.9)),
            PointSpec::new("30", ScenarioParams::paper(30, 0.9)),
        ];
        let campaign = Campaign::new("ref", points, 2)
            .with_reference(ReferenceConfig {
                max_ops: 10,
                node_budget: 200_000,
                workers: 1,
            })
            .with_workers(2);
        let report = run_campaign(&campaign);
        let small = report.points[0].reference.as_ref().expect("eligible");
        assert_eq!(small.runs, 2);
        assert!(small.solved > 0, "tiny instances are solvable");
        assert!(report.points[1].reference.is_none(), "30 ops is too big");
    }

    #[test]
    fn exhausted_node_budget_reports_not_optimal() {
        let points = vec![PointSpec::new("16", ScenarioParams::paper(16, 0.9))];
        let campaign = Campaign::new("truncated", points, 1)
            .with_reference(ReferenceConfig {
                max_ops: 16,
                node_budget: 1,
                workers: 1,
            })
            .with_workers(1);
        let report = run_campaign(&campaign);
        let reference = report.points[0].reference.as_ref().unwrap();
        assert!(
            !reference.optimal,
            "a 1-node budget cannot prove optimality"
        );
    }

    #[test]
    fn homogeneous_catalog_override_applies() {
        let points = vec![PointSpec::new("8", ScenarioParams::paper(8, 0.9))];
        let campaign = Campaign::new("hom", points, 2)
            .with_catalog(Catalog::homogeneous(0, 0))
            .with_workers(2);
        let report = run_campaign(&campaign);
        // With a single catalog kind, every feasible mapping prices as
        // chassis+upgrades of that one kind; just assert feasibility data
        // flowed through.
        assert!(report.points[0].heuristics.iter().any(|h| h.feasible > 0));
    }
}
