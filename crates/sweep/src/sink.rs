//! The typed result sink: per-point statistics and the versioned
//! `BENCH_sweep.json` report.
//!
//! Schema version **1**. Everything outside the `"timing"` object is a
//! deterministic function of the campaign configuration; `"timing"`
//! carries the per-phase wall-clock (and the worker count that produced
//! it) and is omitted entirely in *stable* mode so reports can be
//! byte-compared across worker counts.

use snsp_gen::TreeShape;

use crate::campaign::{PointSpec, ReferenceConfig};
use crate::json::Json;

/// The schema version stamped into (and required of) every report.
pub const SCHEMA_VERSION: i64 = 1;

/// Aggregated outcome of one heuristic at one scenario point.
#[derive(Debug, Clone)]
pub struct HeurStats {
    /// Heuristic display name.
    pub name: &'static str,
    /// Seeds for which a feasible mapping was produced.
    pub feasible: usize,
    /// Total seeds attempted.
    pub runs: usize,
    /// Mean cost over feasible seeds.
    pub mean_cost: Option<f64>,
    /// Mean purchased-processor count over feasible seeds.
    pub mean_procs: Option<f64>,
}

impl HeurStats {
    /// Folds per-seed `(cost, proc_count)` outcomes into one stats row.
    pub fn from_outcomes(name: &'static str, runs: usize, feasible: &[(u64, usize)]) -> Self {
        let mean = |f: &dyn Fn(&(u64, usize)) -> f64| {
            (!feasible.is_empty())
                .then(|| feasible.iter().map(f).sum::<f64>() / feasible.len() as f64)
        };
        HeurStats {
            name,
            feasible: feasible.len(),
            runs,
            mean_cost: mean(&|o| o.0 as f64),
            mean_procs: mean(&|o| o.1 as f64),
        }
    }

    /// `feasible/runs` as a percentage.
    pub fn feasibility_pct(&self) -> f64 {
        100.0 * self.feasible as f64 / self.runs.max(1) as f64
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.to_string())),
            ("runs", Json::Int(self.runs as i64)),
            ("feasible", Json::Int(self.feasible as i64)),
            ("feasibility_pct", Json::Num(self.feasibility_pct())),
            ("mean_cost", Json::opt_num(self.mean_cost)),
            ("mean_procs", Json::opt_num(self.mean_procs)),
        ])
    }
}

/// Aggregated exact-solver reference column at one point.
#[derive(Debug, Clone)]
pub struct ReferenceStats {
    /// Seeds attempted.
    pub runs: usize,
    /// Seeds for which the B&B found any feasible mapping.
    pub solved: usize,
    /// Mean exact cost over solved seeds.
    pub mean_cost: Option<f64>,
    /// `true` only if every run exhausted its search space; a truncated
    /// B&B (node budget spent) demotes the whole column.
    pub optimal: bool,
}

impl ReferenceStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("runs", Json::Int(self.runs as i64)),
            ("solved", Json::Int(self.solved as i64)),
            ("mean_cost", Json::opt_num(self.mean_cost)),
            ("optimal", Json::Bool(self.optimal)),
        ])
    }
}

/// Everything measured at one scenario point.
#[derive(Debug, Clone)]
pub struct PointReport {
    /// The point's row label.
    pub label: String,
    /// Operator count N.
    pub n_ops: usize,
    /// Computation factor α.
    pub alpha: f64,
    /// One stats row per campaign heuristic, in campaign order.
    pub heuristics: Vec<HeurStats>,
    /// Exact-solver reference column, when configured and eligible.
    pub reference: Option<ReferenceStats>,
}

/// Wall-clock per campaign phase, plus the worker count that produced it.
#[derive(Debug, Clone, Copy)]
pub struct PhaseTiming {
    /// Worker threads used by the pool.
    pub workers: usize,
    /// Total jobs in the flattened grid.
    pub jobs: usize,
    /// Seconds spent flattening the grid.
    pub flatten_s: f64,
    /// Seconds spent draining the job pool.
    pub run_s: f64,
    /// Seconds spent aggregating outcomes.
    pub aggregate_s: f64,
    /// End-to-end seconds.
    pub total_s: f64,
}

/// The complete, serializable result of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign identifier.
    pub campaign: String,
    /// Seeds per grid cell.
    pub seeds: u64,
    /// Heuristic names, in campaign (column) order.
    pub heuristic_names: Vec<&'static str>,
    /// Reference-column configuration, echoed for reproducibility.
    pub reference: Option<ReferenceConfig>,
    /// The scenario grid, echoed for reproducibility.
    pub config_points: Vec<PointSpec>,
    /// Per-point results, in grid order.
    pub points: Vec<PointReport>,
    /// Wall-clock phases (never part of stable output).
    pub timing: Option<PhaseTiming>,
}

impl CampaignReport {
    /// Serializes schema v1. With `include_timing = false` the
    /// `"timing"` key is omitted and the output is byte-identical for
    /// every worker count (the *stable* form used by tests and CI diffs).
    pub fn to_json(&self, include_timing: bool) -> Json {
        let mut pairs = vec![
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            (
                "generator",
                Json::Str(format!("snsp-sweep {}", env!("CARGO_PKG_VERSION"))),
            ),
            ("campaign", Json::Str(self.campaign.clone())),
            (
                "config",
                Json::obj(vec![
                    ("seeds", Json::Int(self.seeds as i64)),
                    (
                        "heuristics",
                        Json::Arr(
                            self.heuristic_names
                                .iter()
                                .map(|n| Json::Str(n.to_string()))
                                .collect(),
                        ),
                    ),
                    (
                        "reference",
                        match &self.reference {
                            None => Json::Null,
                            Some(r) => Json::obj(vec![
                                ("max_ops", Json::Int(r.max_ops as i64)),
                                ("node_budget", Json::Int(r.node_budget as i64)),
                            ]),
                        },
                    ),
                    (
                        "points",
                        Json::Arr(self.config_points.iter().map(point_config_json).collect()),
                    ),
                ]),
            ),
            (
                "results",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("label", Json::Str(p.label.clone())),
                                ("n_ops", Json::Int(p.n_ops as i64)),
                                ("alpha", Json::Num(p.alpha)),
                                (
                                    "heuristics",
                                    Json::Arr(p.heuristics.iter().map(|h| h.to_json()).collect()),
                                ),
                                (
                                    "reference",
                                    p.reference
                                        .as_ref()
                                        .map(|r| r.to_json())
                                        .unwrap_or(Json::Null),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if include_timing {
            if let Some(t) = &self.timing {
                pairs.push((
                    "timing",
                    Json::obj(vec![
                        ("workers", Json::Int(t.workers as i64)),
                        ("jobs", Json::Int(t.jobs as i64)),
                        ("flatten_s", Json::Num(t.flatten_s)),
                        ("run_s", Json::Num(t.run_s)),
                        ("aggregate_s", Json::Num(t.aggregate_s)),
                        ("total_s", Json::Num(t.total_s)),
                    ]),
                ));
            }
        }
        Json::obj(pairs)
    }

    /// [`to_json`](Self::to_json) rendered to pretty-printed text.
    pub fn render_json(&self, include_timing: bool) -> String {
        self.to_json(include_timing).render()
    }
}

fn point_config_json(point: &PointSpec) -> Json {
    let p = &point.params;
    Json::obj(vec![
        ("label", Json::Str(point.label.clone())),
        ("n_ops", Json::Int(p.n_ops as i64)),
        ("alpha", Json::Num(p.alpha)),
        ("kappa", Json::Num(p.kappa)),
        ("n_types", Json::Int(p.n_types as i64)),
        (
            "sizes_mb",
            Json::Arr(vec![Json::Num(p.sizes.min), Json::Num(p.sizes.max)]),
        ),
        ("freq_hz", Json::Num(p.freq.0)),
        ("servers", Json::Int(p.n_servers as i64)),
        (
            "replicas",
            Json::Arr(vec![
                Json::Int(p.min_replicas as i64),
                Json::Int(p.max_replicas as i64),
            ]),
        ),
        ("rho", Json::Num(p.rho)),
        (
            "shape",
            Json::Str(
                match point.shape {
                    TreeShape::Random => "random",
                    TreeShape::LeftDeep => "left-deep",
                }
                .to_string(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_outcomes_aggregates_means() {
        let stats = HeurStats::from_outcomes("X", 4, &[(100, 2), (200, 4)]);
        assert_eq!(stats.feasible, 2);
        assert_eq!(stats.runs, 4);
        assert_eq!(stats.mean_cost, Some(150.0));
        assert_eq!(stats.mean_procs, Some(3.0));
        assert!((stats.feasibility_pct() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn infeasible_rows_serialize_null_means() {
        let stats = HeurStats::from_outcomes("X", 3, &[]);
        assert_eq!(stats.mean_cost, None);
        let json = stats.to_json().render();
        assert!(json.contains("\"mean_cost\": null"));
        assert!(json.contains("\"feasibility_pct\": 0.0"));
    }

    #[test]
    fn timing_is_excluded_in_stable_mode() {
        let report = CampaignReport {
            campaign: "t".into(),
            seeds: 1,
            heuristic_names: vec!["A"],
            reference: None,
            config_points: vec![],
            points: vec![],
            timing: Some(PhaseTiming {
                workers: 8,
                jobs: 0,
                flatten_s: 0.0,
                run_s: 0.1,
                aggregate_s: 0.0,
                total_s: 0.1,
            }),
        };
        assert!(report.render_json(true).contains("\"timing\""));
        assert!(!report.render_json(false).contains("\"timing\""));
        assert!(!report.render_json(false).contains("workers"));
    }
}
