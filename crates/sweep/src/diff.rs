//! Structural run-to-run comparison of report artifacts — the
//! regression sentinel behind `snsp-experiments report diff`.
//!
//! A byte-for-byte `cmp` of two `BENCH_*.json` files breaks the moment
//! any wall-clock column moves, so CI could only ever gate *stable*
//! renderings. This module compares two same-kind documents
//! **structurally** instead:
//!
//! * **Deterministic columns are strict** — any type or value mismatch,
//!   missing key, or array-length change is a regression.
//! * **Wall-clock/RSS columns are toleranced** — values under a
//!   `timing` or `overlay` component, or whose key smells of time or
//!   memory (`*_s`, `*_ms`, `*_us`, `*_ns`, `rss`, `latency`, `wall`,
//!   `speedup`), are compared against a configurable relative
//!   threshold; absent a threshold they are informational only. A
//!   `null`-vs-value difference on such a path is the stable-vs-timed
//!   rendering split and is never a finding.
//! * **Identity metadata is informational** — `generator` and
//!   `schema_version` may differ between tool versions; when the schema
//!   versions differ, missing keys degrade to informational too, so an
//!   old artifact can be diffed against a new one without drowning in
//!   structure noise.
//!
//! The result is a [`DiffReport`]: regressions (fail the build),
//! informational drifts (print and move on), and a human-readable
//! table. Works on every kinded schema (serve, perf, refine, telemetry,
//! chaos, trace) and on kindless schema-v1 sweep reports.

use crate::json::{parse, Json};

/// Options for [`diff_reports`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DiffOptions {
    /// Relative tolerance for wall-clock/RSS columns (e.g. `0.25` =
    /// ±25%). `None` makes toleranced columns informational only.
    pub timing_tolerance: Option<f64>,
}

/// Why a difference was classified the way it was.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffKind {
    /// Deterministic column mismatch — always a regression.
    Strict,
    /// Toleranced column moved beyond the configured threshold.
    ToleranceBreach {
        /// The observed relative change (|b−a| / max(|a|, ε)).
        rel: f64,
    },
    /// Informational drift (timing column within/without threshold,
    /// identity metadata, cross-version structure).
    Info,
}

/// One observed difference between the two documents.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// Dotted path of the differing value (`results[3].mean_cost`).
    pub path: String,
    /// Rendered value in the first document (`-` when absent).
    pub a: String,
    /// Rendered value in the second document (`-` when absent).
    pub b: String,
    /// Classification.
    pub kind: DiffKind,
}

/// Outcome of a structural diff.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The shared `kind` discriminator (`"sweep"` for kindless v1).
    pub kind: String,
    /// Leaf values compared.
    pub compared: usize,
    /// Differences that must fail the build.
    pub regressions: Vec<DiffEntry>,
    /// Differences worth printing but not failing on.
    pub informational: Vec<DiffEntry>,
}

impl DiffReport {
    /// `true` when no regressions were found (informational drift is
    /// still allowed).
    pub fn clean(&self) -> bool {
        self.regressions.is_empty()
    }

    /// The human-readable regression table: a one-line verdict followed
    /// by one row per difference, regressions first.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "report diff: kind \"{}\", {} values compared, {} regression(s), {} informational\n",
            self.kind,
            self.compared,
            self.regressions.len(),
            self.informational.len()
        );
        for e in &self.regressions {
            let tag = match e.kind {
                DiffKind::ToleranceBreach { rel } => {
                    format!("TOLERANCE({:+.1}%)", rel * 100.0)
                }
                _ => "REGRESSION".to_string(),
            };
            out.push_str(&format!("  {tag:<18} {}: {} -> {}\n", e.path, e.a, e.b));
        }
        for e in &self.informational {
            out.push_str(&format!(
                "  {:<18} {}: {} -> {}\n",
                "info", e.path, e.a, e.b
            ));
        }
        out
    }
}

/// The `kind` a document diffs as: its discriminator, or `"sweep"` for
/// a kindless schema-v1 campaign report.
fn kind_of(doc: &Json) -> String {
    doc.get("kind")
        .and_then(Json::as_str)
        .unwrap_or("sweep")
        .to_string()
}

/// Structurally compares two same-kind report documents. Returns the
/// classified differences, or the parse/kind errors that prevented a
/// comparison.
pub fn diff_reports(a: &str, b: &str, opts: DiffOptions) -> Result<DiffReport, Vec<String>> {
    let a = parse(a).map_err(|e| vec![format!("first document is not JSON: {e}")])?;
    let b = parse(b).map_err(|e| vec![format!("second document is not JSON: {e}")])?;
    let (ka, kb) = (kind_of(&a), kind_of(&b));
    if ka != kb {
        return Err(vec![format!(
            "kind mismatch: cannot diff a \"{ka}\" report against a \"{kb}\" report"
        )]);
    }
    let cross_version = a.get("schema_version").and_then(Json::as_int)
        != b.get("schema_version").and_then(Json::as_int);
    let mut cx = DiffCx {
        opts,
        cross_version,
        compared: 0,
        regressions: Vec::new(),
        informational: Vec::new(),
    };
    cx.walk("", &a, &b, false);
    Ok(DiffReport {
        kind: ka,
        compared: cx.compared,
        regressions: cx.regressions,
        informational: cx.informational,
    })
}

/// Keys that mark their entire subtree as toleranced (wall-clock or
/// scheduling overlay — excluded from the stable rendering contract).
const TOLERANCED_COMPONENTS: [&str; 2] = ["timing", "overlay"];

/// Leaf-key suffixes measuring wall time.
const TIMING_SUFFIXES: [&str; 4] = ["_s", "_ms", "_us", "_ns"];

/// Leaf-key substrings measuring time, memory, or derived throughput.
const TIMING_SUBSTRINGS: [&str; 4] = ["rss", "latency", "wall", "speedup"];

/// Keys whose drift is identity metadata, never a result change.
const METADATA_KEYS: [&str; 2] = ["generator", "schema_version"];

fn is_toleranced_key(key: &str) -> bool {
    TIMING_SUFFIXES.iter().any(|s| key.ends_with(s))
        || TIMING_SUBSTRINGS.iter().any(|s| key.contains(s))
}

struct DiffCx {
    opts: DiffOptions,
    cross_version: bool,
    compared: usize,
    regressions: Vec<DiffEntry>,
    informational: Vec<DiffEntry>,
}

impl DiffCx {
    fn emit(&mut self, path: &str, a: &Json, b: &Json, kind: DiffKind) {
        let entry = DiffEntry {
            path: path.to_string(),
            a: render_leaf(a),
            b: render_leaf(b),
            kind: kind.clone(),
        };
        match kind {
            DiffKind::Info => self.informational.push(entry),
            _ => self.regressions.push(entry),
        }
    }

    fn missing(&mut self, path: &str, present_in_a: bool, value: &Json, toleranced: bool) {
        let kind = if toleranced || self.cross_version {
            DiffKind::Info
        } else {
            DiffKind::Strict
        };
        let (a, b) = if present_in_a {
            (render_leaf(value), "-".to_string())
        } else {
            ("-".to_string(), render_leaf(value))
        };
        let entry = DiffEntry {
            path: path.to_string(),
            a,
            b,
            kind: kind.clone(),
        };
        match kind {
            DiffKind::Info => self.informational.push(entry),
            _ => self.regressions.push(entry),
        }
    }

    fn walk(&mut self, path: &str, a: &Json, b: &Json, toleranced: bool) {
        match (a, b) {
            (Json::Obj(pa), Json::Obj(pb)) => {
                for (k, va) in pa {
                    let sub = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    let sub_tol = toleranced || TOLERANCED_COMPONENTS.contains(&k.as_str());
                    match pb.iter().find(|(kb, _)| kb == k) {
                        Some((_, vb)) => self.walk(&sub, va, vb, sub_tol),
                        None => self.missing(&sub, true, va, sub_tol || is_toleranced_key(k)),
                    }
                }
                for (k, vb) in pb {
                    if pa.iter().all(|(ka, _)| ka != k) {
                        let sub = if path.is_empty() {
                            k.clone()
                        } else {
                            format!("{path}.{k}")
                        };
                        let sub_tol = toleranced
                            || TOLERANCED_COMPONENTS.contains(&k.as_str())
                            || is_toleranced_key(k);
                        self.missing(&sub, false, vb, sub_tol);
                    }
                }
            }
            (Json::Arr(xa), Json::Arr(xb)) => {
                if xa.len() != xb.len() {
                    let kind = if toleranced {
                        DiffKind::Info
                    } else {
                        DiffKind::Strict
                    };
                    self.emit(
                        &format!("{path}.len()"),
                        &Json::Int(xa.len() as i64),
                        &Json::Int(xb.len() as i64),
                        kind,
                    );
                }
                for (i, (va, vb)) in xa.iter().zip(xb).enumerate() {
                    self.walk(&format!("{path}[{i}]"), va, vb, toleranced);
                }
            }
            _ => self.leaf(path, a, b, toleranced),
        }
    }

    fn leaf(&mut self, path: &str, a: &Json, b: &Json, toleranced: bool) {
        self.compared += 1;
        let key = path.rsplit('.').next().unwrap_or(path);
        let key = key.split('[').next().unwrap_or(key);
        if METADATA_KEYS.contains(&key) {
            if render_leaf(a) != render_leaf(b) {
                self.emit(path, a, b, DiffKind::Info);
            }
            return;
        }
        let toleranced = toleranced || is_toleranced_key(key);
        if toleranced {
            // The stable rendering nulls overlay/timing values; a
            // null-vs-value pair is the two forms, not a drift.
            if matches!(a, Json::Null) || matches!(b, Json::Null) {
                if render_leaf(a) != render_leaf(b) {
                    self.emit(path, a, b, DiffKind::Info);
                }
                return;
            }
            match (a.as_num(), b.as_num()) {
                (Some(na), Some(nb)) => {
                    if na == nb {
                        return;
                    }
                    let rel = (nb - na).abs() / na.abs().max(1e-9);
                    match self.opts.timing_tolerance {
                        Some(tol) if rel > tol => {
                            let signed = (nb - na) / na.abs().max(1e-9);
                            self.emit(path, a, b, DiffKind::ToleranceBreach { rel: signed });
                        }
                        _ => self.emit(path, a, b, DiffKind::Info),
                    }
                }
                // Non-numeric under a timing component (e.g.
                // timing.workers label strings): fall through to strict.
                _ => {
                    if render_leaf(a) != render_leaf(b) {
                        self.emit(path, a, b, DiffKind::Strict);
                    }
                }
            }
            return;
        }
        if render_leaf(a) != render_leaf(b) {
            self.emit(path, a, b, DiffKind::Strict);
        }
    }
}

/// Renders one scalar the way the document does (so `5` and `5.0`
/// stay distinguishable, matching the serializer's int/float split).
fn render_leaf(v: &Json) -> String {
    let mut s = v.render();
    if s.ends_with('\n') {
        s.pop();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(mean: f64, total_s: f64) -> String {
        Json::obj(vec![
            ("schema_version", Json::Int(1)),
            ("generator", Json::Str("snsp-sweep 0.1.0".to_string())),
            ("campaign", Json::Str("unit".to_string())),
            (
                "results",
                Json::Arr(vec![Json::obj(vec![
                    ("label", Json::Str("8".to_string())),
                    ("mean_cost", Json::Num(mean)),
                    ("admit_p50_us", Json::Num(850.0)),
                ])]),
            ),
            (
                "timing",
                Json::obj(vec![
                    ("workers", Json::Int(4)),
                    ("total_s", Json::Num(total_s)),
                ]),
            ),
        ])
        .render()
    }

    #[test]
    fn self_diff_is_clean() {
        let d = doc(7548.5, 1.25);
        let report = diff_reports(&d, &d, DiffOptions::default()).unwrap();
        assert!(report.clean());
        assert!(report.informational.is_empty());
        assert!(report.compared > 0);
    }

    #[test]
    fn det_column_change_is_a_regression() {
        let report = diff_reports(
            &doc(7548.5, 1.25),
            &doc(7600.0, 1.25),
            DiffOptions::default(),
        )
        .unwrap();
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].path.contains("mean_cost"));
        assert!(report.render_table().contains("REGRESSION"));
    }

    #[test]
    fn timing_drift_is_informational_without_a_threshold() {
        let report = diff_reports(
            &doc(7548.5, 1.25),
            &doc(7548.5, 9.0),
            DiffOptions::default(),
        )
        .unwrap();
        assert!(report.clean());
        assert_eq!(report.informational.len(), 1);
    }

    #[test]
    fn timing_drift_breaches_a_tight_threshold() {
        let opts = DiffOptions {
            timing_tolerance: Some(0.10),
        };
        let report = diff_reports(&doc(7548.5, 1.0), &doc(7548.5, 2.0), opts).unwrap();
        assert_eq!(report.regressions.len(), 1);
        assert!(matches!(
            report.regressions[0].kind,
            DiffKind::ToleranceBreach { .. }
        ));
        // Within threshold stays informational.
        let report = diff_reports(&doc(7548.5, 1.0), &doc(7548.5, 1.05), opts).unwrap();
        assert!(report.clean());
    }

    #[test]
    fn null_vs_value_on_timing_is_the_stable_form_split() {
        let stable = doc(7548.5, 1.0).replace("\"total_s\": 1.0", "\"total_s\": null");
        let report = diff_reports(&stable, &doc(7548.5, 1.0), DiffOptions::default()).unwrap();
        assert!(report.clean());
    }

    #[test]
    fn kind_mismatch_refuses_to_diff() {
        let serve = doc(1.0, 1.0).replace(
            "\"campaign\": \"unit\"",
            "\"kind\": \"serve\", \"campaign\": \"unit\"",
        );
        let err = diff_reports(&doc(1.0, 1.0), &serve, DiffOptions::default()).unwrap_err();
        assert!(err[0].contains("kind mismatch"));
    }

    #[test]
    fn missing_key_is_strict_same_version_info_across_versions() {
        let trimmed = doc(7548.5, 1.0).replace("    \"label\": \"8\",\n", "");
        let report = diff_reports(&doc(7548.5, 1.0), &trimmed, DiffOptions::default()).unwrap();
        assert!(!report.clean());
        let v2 = trimmed.replace("\"schema_version\": 1", "\"schema_version\": 2");
        let report = diff_reports(&doc(7548.5, 1.0), &v2, DiffOptions::default()).unwrap();
        assert!(report.clean(), "{}", report.render_table());
    }

    #[test]
    fn array_length_change_is_strict() {
        let a = doc(7548.5, 1.0);
        let b = a.replace(
            "\"admit_p50_us\": 850.0\n    }",
            "\"admit_p50_us\": 850.0\n    }, {\"label\": \"9\", \"mean_cost\": 1.0, \
             \"admit_p50_us\": 1.0}",
        );
        let report = diff_reports(&a, &b, DiffOptions::default()).unwrap();
        assert!(!report.clean());
        assert!(report.regressions.iter().any(|e| e.path.contains("len()")));
    }
}
