//! Timeline export for the causal trace layer: the deterministic
//! `TRACE.json` artifact (schema v7) and the Chrome/Perfetto
//! `trace_event` timeline.
//!
//! Two files, two contracts:
//!
//! * [`trace_json`] renders the **Det-class event stream only** —
//!   `(run, tick, shard, seq)`-stamped, canonically sorted, crash
//!   re-replay duplicates collapsed — so the file is **byte-identical
//!   at any worker count** and can be `cmp`'d or
//!   [`diff`](crate::diff)'d across runs. Validated by
//!   [`validate_trace_report`](crate::schema::validate_trace_report).
//! * [`chrome_trace_json`] renders *everything* (overlay events and the
//!   optional wall-clock stamps included) in the Chrome `trace_event`
//!   array format: one process per run, one thread lane per shard,
//!   complete (`"X"`) spans for ticks, instant (`"i"`) events for
//!   admissions, folds and faults. Load it at `chrome://tracing` or
//!   <https://ui.perfetto.dev>. Wall-clock timelines are never stable;
//!   when the wall overlay was off, events are laid out on a synthetic
//!   equal-spacing clock so the causal order still reads left-to-right.

use snsp_telemetry::trace::{TraceEvent, TraceEventKind, TraceSnapshot};
use snsp_telemetry::Class;

use crate::json::Json;
use crate::schema::TRACE_SCHEMA_VERSION;

/// Renders the deterministic `TRACE.json` document (schema v7) from a
/// merged trace snapshot: Det events only, in canonical order, with the
/// ring-overflow count surfaced (`dropped > 0` voids cross-worker-count
/// byte-identity, and CI asserts it is zero).
pub fn trace_json(snap: &TraceSnapshot, campaign: &str) -> Json {
    let det = snap.det_events();
    Json::obj(vec![
        ("schema_version", Json::Int(TRACE_SCHEMA_VERSION)),
        (
            "generator",
            Json::Str(format!("snsp-sweep {}", env!("CARGO_PKG_VERSION"))),
        ),
        ("kind", Json::Str("trace".to_string())),
        ("campaign", Json::Str(campaign.to_string())),
        ("dropped", Json::Int(snap.dropped as i64)),
        (
            "det_events",
            Json::Arr(
                det.iter()
                    .map(|ev| {
                        let (label, detail) = ev.kind.describe();
                        Json::obj(vec![
                            ("run", Json::Int(ev.run as i64)),
                            ("tick", Json::Int(ev.time.tick as i64)),
                            ("shard", Json::Int(ev.time.shard as i64)),
                            ("seq", Json::Int(ev.time.seq as i64)),
                            ("event", Json::Str(label.to_string())),
                            ("detail", Json::Str(detail)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The synthetic-clock spacing (microseconds) between consecutive
/// events when the wall overlay was not recorded.
const SYNTHETIC_STEP_US: f64 = 10.0;

/// The `tid` of the coordinator lane carrying tick spans (shard lanes
/// use the shard index; `u32` shard stamps never reach this value).
const COORDINATOR_TID: i64 = 1_000_000;

/// Renders the full event stream (Det + overlay) as a Chrome
/// `trace_event` JSON document. Events with a wall-clock stamp use it;
/// otherwise each event advances a synthetic clock by a fixed step,
/// preserving the canonical order visually.
/// Tick spans (`TickStart`..`TickEnd`, per run) become complete `"X"`
/// events on the run's coordinator lane; everything else is an instant.
pub fn chrome_trace_json(snap: &TraceSnapshot) -> Json {
    let wall = snap.events.iter().any(|e| e.wall_us > 0.0);
    let ts_of = |ev: &TraceEvent, ix: usize| -> f64 {
        if wall {
            ev.wall_us
        } else {
            ix as f64 * SYNTHETIC_STEP_US
        }
    };
    let mut out: Vec<Json> = Vec::new();
    // Open tick spans per run: run -> (tick, start ts).
    let mut open: Vec<(u64, u64, f64)> = Vec::new();
    for (ix, ev) in snap.events.iter().enumerate() {
        let ts = ts_of(ev, ix);
        match ev.kind {
            TraceEventKind::TickStart { .. } => {
                open.retain(|&(r, _, _)| r != ev.run);
                open.push((ev.run, ev.time.tick, ts));
            }
            TraceEventKind::TickEnd => {
                if let Some(pos) = open.iter().position(|&(r, _, _)| r == ev.run) {
                    let (run, tick, start) = open.remove(pos);
                    out.push(chrome_event(
                        &format!("tick {tick}"),
                        "X",
                        start,
                        Some((ts - start).max(SYNTHETIC_STEP_US)),
                        run,
                        COORDINATOR_TID,
                        String::new(),
                    ));
                }
            }
            _ => {
                let (label, detail) = ev.kind.describe();
                let tid = match ev.class {
                    Class::Det => ev.time.shard as i64,
                    // Overlay lanes (steals, splits): keep them off the
                    // shard lanes so the Det timeline stays readable.
                    Class::Overlay => COORDINATOR_TID + 1 + ev.time.shard as i64,
                };
                out.push(chrome_event(label, "i", ts, None, ev.run, tid, detail));
            }
        }
    }
    // A crash mid-run can leave a tick span open; close it at the end.
    for &(run, tick, start) in &open {
        out.push(chrome_event(
            &format!("tick {tick} (unclosed)"),
            "X",
            start,
            Some(SYNTHETIC_STEP_US),
            run,
            COORDINATOR_TID,
            String::new(),
        ));
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
    ])
}

fn chrome_event(
    name: &str,
    ph: &str,
    ts: f64,
    dur: Option<f64>,
    pid: u64,
    tid: i64,
    detail: String,
) -> Json {
    let mut pairs = vec![
        ("name", Json::Str(name.to_string())),
        ("ph", Json::Str(ph.to_string())),
        ("ts", Json::Num(ts)),
    ];
    if let Some(d) = dur {
        pairs.push(("dur", Json::Num(d)));
    }
    if ph == "i" {
        // Thread-scoped instants render as small arrows on their lane.
        pairs.push(("s", Json::Str("t".to_string())));
    }
    pairs.push(("pid", Json::Int(pid as i64)));
    pairs.push(("tid", Json::Int(tid)));
    if !detail.is_empty() {
        pairs.push(("args", Json::obj(vec![("detail", Json::Str(detail))])));
    }
    Json::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::validate_trace_report;
    use snsp_telemetry::trace::{LogicalTime, TraceEventKind};

    fn sample_snapshot() -> TraceSnapshot {
        let mk = |run, tick, shard, seq, class, kind| TraceEvent {
            run,
            time: LogicalTime { tick, shard, seq },
            class,
            kind,
            wall_us: 0.0,
        };
        TraceSnapshot {
            events: vec![
                mk(
                    3,
                    1,
                    0,
                    0,
                    Class::Det,
                    TraceEventKind::TickStart { events: 2 },
                ),
                mk(
                    3,
                    1,
                    0,
                    0,
                    Class::Det,
                    TraceEventKind::Admit {
                        tenant: 5,
                        new_procs: 2,
                        reused_procs: 0,
                    },
                ),
                mk(
                    3,
                    1,
                    1,
                    0,
                    Class::Overlay,
                    TraceEventKind::Steal { worker: 1 },
                ),
                mk(
                    3,
                    1,
                    u32::MAX,
                    u32::MAX,
                    Class::Det,
                    TraceEventKind::TickEnd,
                ),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn trace_json_round_trips_through_the_validator() {
        let doc = trace_json(&sample_snapshot(), "unit");
        validate_trace_report(&doc.render()).expect("valid v7 document");
        // Det events only: the overlay steal is excluded.
        let events = doc.get("det_events").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn chrome_export_pairs_tick_spans() {
        let doc = chrome_trace_json(&sample_snapshot());
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 1, "one tick span");
        assert!(spans[0].get("dur").and_then(Json::as_num).unwrap() > 0.0);
        let instants = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .count();
        assert_eq!(instants, 2, "admit + steal");
    }

    #[test]
    fn unclosed_tick_spans_are_flushed() {
        let mut snap = sample_snapshot();
        snap.events.pop(); // drop the TickEnd
        let doc = chrome_trace_json(&snap);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(events.iter().any(|e| {
            e.get("name")
                .and_then(Json::as_str)
                .is_some_and(|n| n.contains("unclosed"))
        }));
    }
}
