//! A minimal JSON value, writer, and parser.
//!
//! The offline vendor set has no serde, so campaign reports are
//! serialized by hand. Two properties matter more than generality:
//!
//! * **Deterministic bytes** — objects keep insertion order and numbers
//!   format via Rust's shortest-roundtrip `Display`, so the same report
//!   always renders the same bytes regardless of worker count.
//! * **Round-trip** — the parser accepts everything the writer emits
//!   (plus ordinary JSON), which is what the schema validator runs on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, emitted without a decimal point.
    Int(i64),
    /// A float, emitted via shortest-roundtrip `Display`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key→value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object node from ordered pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// `Some(x)` → serialized `x`; `None` → `null`.
    pub fn opt_num(v: Option<f64>) -> Json {
        v.map(Json::Num).unwrap_or(Json::Null)
    }

    /// Looks a key up in an object node.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The node as an i64 (integers only).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The node as a float (accepts integer nodes too).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The node as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The node as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The node as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    // Guarantee a JSON number token (Display drops ".0").
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{n:.1}");
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null"); // NaN/inf are not JSON
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry a byte offset and a short reason.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            let mut keys_seen: BTreeMap<String, ()> = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                if keys_seen.insert(key.clone(), ()).is_some() {
                    return Err(format!("duplicate key {key:?}"));
                }
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if token.is_empty() || token == "-" {
        return Err(format!("expected a value at byte {start}"));
    }
    if is_float {
        token
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {token:?}"))
    } else {
        token
            .parse::<i64>()
            .map(Json::Int)
            .map_err(|_| format!("bad integer {token:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_and_parser_round_trip() {
        let doc = Json::obj(vec![
            ("schema_version", Json::Int(1)),
            ("name", Json::Str("fig2 α=0.9 \"sweep\"".to_string())),
            ("mean_cost", Json::Num(7548.5)),
            ("whole", Json::Num(42.0)),
            ("missing", Json::Null),
            ("ok", Json::Bool(true)),
            (
                "rows",
                Json::Arr(vec![Json::Int(-3), Json::Num(0.25), Json::Arr(vec![])]),
            ),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Json::Num(42.0).render(), "42.0\n");
        assert_eq!(Json::Int(42).render(), "42\n");
    }

    #[test]
    fn rendering_is_deterministic() {
        let doc = Json::obj(vec![
            ("b", Json::Int(2)),
            ("a", Json::Num(1.5)),
            ("c", Json::Arr(vec![Json::Str("x".into())])),
        ]);
        assert_eq!(doc.render(), doc.render());
        // Insertion order survives, not alphabetical order.
        let text = doc.render();
        assert!(text.find("\"b\"").unwrap() < text.find("\"a\"").unwrap());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("{\"a\": 1, \"a\": 2}").is_err(), "duplicate keys");
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let parsed = parse(r#"{"s": "a\"b\néé"}"#).unwrap();
        assert_eq!(parsed.get("s").unwrap().as_str().unwrap(), "a\"b\néé");
    }

    #[test]
    fn accessors_work() {
        let doc = parse(r#"{"i": 3, "f": 2.5, "s": "x", "b": false, "a": [1]}"#).unwrap();
        assert_eq!(doc.get("i").unwrap().as_int(), Some(3));
        assert_eq!(doc.get("i").unwrap().as_num(), Some(3.0));
        assert_eq!(doc.get("f").unwrap().as_num(), Some(2.5));
        assert_eq!(doc.get("f").unwrap().as_int(), None);
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(doc.get("nope").is_none());
    }
}
