//! Structural validation of `BENCH_sweep.json` and `BENCH_serve.json`
//! documents.
//!
//! CI uploads the reports as workflow artifacts and fails the build when
//! these checks reject them, so downstream tooling (perf dashboards,
//! diff scripts) can rely on the schemas without defensive parsing.
//! Campaign reports are **schema v1** ([`validate_report`]); online
//! serving reports are **schema v3** ([`validate_serve_report`]), which
//! adds the `kind: "serve"` discriminator, the trace-grid config echo
//! (including the shard count), the service-metric result rows and the
//! `admit_latency` p50/p99 column (v2 documents — pre-sharding, no
//! latency column — stay readable); perf reports are **schema v4**
//! ([`validate_perf_report`], `kind: "perf"`), recording the incremental
//! demand engine's measured speedups over the retained reference oracles
//! (heuristic pipelines, the branch-and-bound, and the raw demand probe)
//! plus the process peak-RSS gauge (v4); telemetry reports are
//! **schema v5** ([`validate_telemetry_report`], `kind: "telemetry"`),
//! carrying the deterministic counter/histogram core and the optional
//! wall-clock overlay written by `snsp-experiments --telemetry-out`.
//! The `kind` discriminator keeps every kinded document apart.

use crate::json::{parse, Json};
use crate::sink::SCHEMA_VERSION;

/// The schema version stamped into every new serve report.
/// [`validate_serve_report`] also still accepts v2 documents (written
/// before the sharded tier and the admission-latency columns).
pub const SERVE_SCHEMA_VERSION: i64 = 3;

/// The oldest serve schema version [`validate_serve_report`] accepts.
pub const SERVE_SCHEMA_VERSION_MIN: i64 = 2;

/// The schema version stamped into (and required of) every perf report.
/// v4 adds the `results.peak_rss_kb` gauge column.
pub const PERF_SCHEMA_VERSION: i64 = 4;

/// The schema version stamped into (and required of) every refine report.
pub const REFINE_SCHEMA_VERSION: i64 = 4;

/// The schema version stamped into (and required of) every telemetry
/// report (`TELEMETRY.json`, `kind: "telemetry"`).
pub const TELEMETRY_SCHEMA_VERSION: i64 = 5;

/// The schema version stamped into (and required of) every chaos report
/// (`BENCH_chaos.json`, `kind: "chaos"`): fault-injection campaigns over
/// the sharded serve tier, with per-point fault/recovery/retry counters,
/// the crash-recovery fingerprint verdict and the invariant-audit count.
pub const CHAOS_SCHEMA_VERSION: i64 = 6;

/// The schema version stamped into (and required of) every trace report
/// (`TRACE.json`, `kind: "trace"`): the deterministic causal event
/// stream of a replay — Det-class events only, stamped with logical
/// time `(run, tick, shard, seq)` — so the file is byte-identical at
/// any worker count (the wall-clock Chrome timeline is exported
/// separately and is never stable).
pub const TRACE_SCHEMA_VERSION: i64 = 7;

/// Checks the `kind` discriminator against the kind a validator expects,
/// producing an error that names **both** the expected and the found
/// kind — so a cross-kind mistake (validating a serve report with the
/// refine validator, say) reads as "wrong file", not as a pile of
/// missing-field noise. `expected = None` means the document must be
/// kindless (the original schema-v1 sweep report).
fn check_kind(doc: &Json, expected: Option<&str>, errors: &mut Vec<String>) {
    let found = doc.get("kind").and_then(Json::as_str);
    match (expected, found) {
        (Some(want), Some(got)) if want == got => {}
        (Some(want), Some(got)) => errors.push(format!(
            "kind mismatch: expected \"{want}\", found \"{got}\" — \
             this is a BENCH_{got}.json-style document, not BENCH_{want}.json"
        )),
        (Some(want), None) => errors.push(format!(
            "kind must be the string \"{want}\" (missing or not a string; \
             kindless documents are schema-v1 sweep reports)"
        )),
        (None, Some(got)) => errors.push(format!(
            "kind mismatch: expected a kindless schema-v1 sweep report, \
             found kind \"{got}\" — validate it as BENCH_{got}.json instead"
        )),
        (None, None) => {}
    }
}

/// Validates a serialized campaign report against schema v1.
///
/// Returns every violation found (empty ⇒ valid); a parse failure is a
/// single violation.
pub fn validate_report(text: &str) -> Result<(), Vec<String>> {
    let doc = match parse(text) {
        Ok(doc) => doc,
        Err(e) => return Err(vec![format!("not JSON: {e}")]),
    };
    let mut errors = Vec::new();
    check_kind(&doc, None, &mut errors);
    let mut check = |cond: bool, msg: &str| {
        if !cond {
            errors.push(msg.to_string());
        }
    };

    check(
        doc.get("schema_version").and_then(Json::as_int) == Some(SCHEMA_VERSION),
        "schema_version must be the integer 1",
    );
    check(
        doc.get("generator")
            .and_then(Json::as_str)
            .is_some_and(|s| s.starts_with("snsp-sweep")),
        "generator must be an snsp-sweep version string",
    );
    check(
        doc.get("campaign")
            .and_then(Json::as_str)
            .is_some_and(|s| !s.is_empty()),
        "campaign must be a non-empty string",
    );

    let heur_count = doc
        .get("config")
        .and_then(|c| c.get("heuristics"))
        .and_then(Json::as_arr)
        .map(<[Json]>::len);
    let point_count = match doc.get("config") {
        None => {
            errors.push("config object missing".to_string());
            None
        }
        Some(config) => {
            if config.get("seeds").and_then(Json::as_int).unwrap_or(0) < 1 {
                errors.push("config.seeds must be a positive integer".to_string());
            }
            match heur_count {
                None => errors.push("config.heuristics must be an array".to_string()),
                Some(0) => errors.push("config.heuristics must be non-empty".to_string()),
                Some(_) => {}
            }
            match config.get("points").and_then(Json::as_arr) {
                None => {
                    errors.push("config.points must be an array".to_string());
                    None
                }
                Some(points) => {
                    for (i, p) in points.iter().enumerate() {
                        for key in ["label", "shape"] {
                            if p.get(key).and_then(Json::as_str).is_none() {
                                errors.push(format!("config.points[{i}].{key} must be a string"));
                            }
                        }
                        for key in ["n_ops", "n_types", "servers"] {
                            if p.get(key).and_then(Json::as_int).unwrap_or(0) < 1 {
                                errors.push(format!(
                                    "config.points[{i}].{key} must be a positive integer"
                                ));
                            }
                        }
                        for key in ["alpha", "kappa", "freq_hz", "rho"] {
                            if p.get(key).and_then(Json::as_num).is_none() {
                                errors.push(format!("config.points[{i}].{key} must be a number"));
                            }
                        }
                        for key in ["sizes_mb", "replicas"] {
                            if p.get(key).and_then(Json::as_arr).map(<[Json]>::len) != Some(2) {
                                errors
                                    .push(format!("config.points[{i}].{key} must be a pair array"));
                            }
                        }
                    }
                    Some(points.len())
                }
            }
        }
    };

    match doc.get("results").and_then(Json::as_arr) {
        None => errors.push("results must be an array".to_string()),
        Some(results) => {
            if let Some(n) = point_count {
                if results.len() != n {
                    errors.push(format!(
                        "results has {} entries but config.points has {n}",
                        results.len()
                    ));
                }
            }
            for (i, point) in results.iter().enumerate() {
                if point.get("label").and_then(Json::as_str).is_none() {
                    errors.push(format!("results[{i}].label must be a string"));
                }
                match point.get("heuristics").and_then(Json::as_arr) {
                    None => errors.push(format!("results[{i}].heuristics must be an array")),
                    Some(rows) => {
                        if let Some(h) = heur_count {
                            if rows.len() != h {
                                errors.push(format!(
                                    "results[{i}] has {} heuristic rows, expected {h}",
                                    rows.len()
                                ));
                            }
                        }
                        for (j, row) in rows.iter().enumerate() {
                            validate_heur_row(row, i, j, &mut errors);
                        }
                    }
                }
                match point.get("reference") {
                    None => errors.push(format!("results[{i}].reference key missing")),
                    Some(Json::Null) => {}
                    Some(reference) => validate_reference(reference, i, &mut errors),
                }
            }
        }
    }

    if let Some(timing) = doc.get("timing") {
        if timing.get("workers").and_then(Json::as_int).unwrap_or(0) < 1 {
            errors.push("timing.workers must be a positive integer".to_string());
        }
        for key in ["flatten_s", "run_s", "aggregate_s", "total_s"] {
            if !timing
                .get(key)
                .and_then(Json::as_num)
                .is_some_and(|v| v >= 0.0)
            {
                errors.push(format!("timing.{key} must be a non-negative number"));
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Validates a serialized online-serving campaign report (the
/// `BENCH_serve.json` document written by `snsp-serve`).
///
/// Accepts schema v3 (current: shard count in the config echo,
/// `admit_latency` column in every result row) and schema v2 (legacy:
/// neither), so archived artifacts keep validating.
///
/// Returns every violation found (empty ⇒ valid); a parse failure is a
/// single violation.
pub fn validate_serve_report(text: &str) -> Result<(), Vec<String>> {
    let doc = match parse(text) {
        Ok(doc) => doc,
        Err(e) => return Err(vec![format!("not JSON: {e}")]),
    };
    let mut errors = Vec::new();
    check_kind(&doc, Some("serve"), &mut errors);
    let mut check = |cond: bool, msg: &str| {
        if !cond {
            errors.push(msg.to_string());
        }
    };

    let version = doc.get("schema_version").and_then(Json::as_int);
    check(
        version.is_some_and(|v| (SERVE_SCHEMA_VERSION_MIN..=SERVE_SCHEMA_VERSION).contains(&v)),
        "schema_version must be an integer in [2, 3]",
    );
    // v3 adds config.shards and the per-row admit_latency column.
    let v3 = version == Some(SERVE_SCHEMA_VERSION);
    check(
        doc.get("generator")
            .and_then(Json::as_str)
            .is_some_and(|s| s.starts_with("snsp-serve")),
        "generator must be an snsp-serve version string",
    );
    check(
        doc.get("campaign")
            .and_then(Json::as_str)
            .is_some_and(|s| !s.is_empty()),
        "campaign must be a non-empty string",
    );

    let point_count = match doc.get("config") {
        None => {
            errors.push("config object missing".to_string());
            None
        }
        Some(config) => {
            if config.get("seeds").and_then(Json::as_int).unwrap_or(0) < 1 {
                errors.push("config.seeds must be a positive integer".to_string());
            }
            if !config
                .get("slo_frac")
                .and_then(Json::as_num)
                .is_some_and(|v| (0.0..=1.0).contains(&v))
            {
                errors.push("config.slo_frac must be a number in [0, 1]".to_string());
            }
            if v3 && config.get("shards").and_then(Json::as_int).unwrap_or(0) < 1 {
                errors.push("config.shards must be a positive integer".to_string());
            }
            match config.get("points").and_then(Json::as_arr) {
                None => {
                    errors.push("config.points must be an array".to_string());
                    None
                }
                Some(points) => {
                    for (i, p) in points.iter().enumerate() {
                        if p.get("label").and_then(Json::as_str).is_none() {
                            errors.push(format!("config.points[{i}].label must be a string"));
                        }
                        for key in ["lambda", "mean_hold", "pareto_shape", "horizon"] {
                            if !p.get(key).and_then(Json::as_num).is_some_and(|v| v > 0.0) {
                                errors.push(format!(
                                    "config.points[{i}].{key} must be a positive number"
                                ));
                            }
                        }
                        if !p
                            .get("fail_rate")
                            .and_then(Json::as_num)
                            .is_some_and(|v| v >= 0.0)
                        {
                            errors.push(format!(
                                "config.points[{i}].fail_rate must be a non-negative number"
                            ));
                        }
                        for key in ["n_ops", "alpha", "rho"] {
                            if p.get(key).and_then(Json::as_arr).map(<[Json]>::len) != Some(2) {
                                errors
                                    .push(format!("config.points[{i}].{key} must be a pair array"));
                            }
                        }
                        match p.get("burst") {
                            None => errors.push(format!("config.points[{i}].burst key missing")),
                            Some(Json::Null) => {}
                            Some(b) => {
                                for key in ["period", "width", "multiplier"] {
                                    if b.get(key).and_then(Json::as_num).is_none() {
                                        errors.push(format!(
                                            "config.points[{i}].burst.{key} must be a number"
                                        ));
                                    }
                                }
                            }
                        }
                    }
                    Some(points.len())
                }
            }
        }
    };

    match doc.get("results").and_then(Json::as_arr) {
        None => errors.push("results must be an array".to_string()),
        Some(results) => {
            if let Some(n) = point_count {
                if results.len() != n {
                    errors.push(format!(
                        "results has {} entries but config.points has {n}",
                        results.len()
                    ));
                }
            }
            for (i, point) in results.iter().enumerate() {
                let at = format!("results[{i}]");
                if point.get("label").and_then(Json::as_str).is_none() {
                    errors.push(format!("{at}.label must be a string"));
                }
                let mut int_of = |key: &str| -> Option<i64> {
                    let v = point.get(key).and_then(Json::as_int).filter(|&v| v >= 0);
                    if v.is_none() {
                        errors.push(format!("{at}.{key} must be a non-negative integer"));
                    }
                    v
                };
                let arrivals = int_of("arrivals");
                let admitted = int_of("admitted");
                let rejected = int_of("rejected");
                for key in [
                    "traces",
                    "departed",
                    "evicted",
                    "failures",
                    "peak_procs",
                    "slo_checks",
                    "slo_violations",
                ] {
                    int_of(key);
                }
                if let (Some(a), Some(ad), Some(r)) = (arrivals, admitted, rejected) {
                    if ad + r != a {
                        errors.push(format!("{at}: admitted + rejected must equal arrivals"));
                    }
                }
                if !point
                    .get("admission_rate")
                    .and_then(Json::as_num)
                    .is_some_and(|v| (0.0..=1.0).contains(&v))
                {
                    errors.push(format!("{at}.admission_rate must be a number in [0, 1]"));
                }
                for key in ["mean_cost_integral", "mean_utilization", "mean_final_cost"] {
                    if !point
                        .get(key)
                        .and_then(Json::as_num)
                        .is_some_and(|v| v >= 0.0)
                    {
                        errors.push(format!("{at}.{key} must be a non-negative number"));
                    }
                }
                if v3 {
                    match point.get("admit_latency") {
                        None => errors.push(format!("{at}.admit_latency key missing")),
                        // Stable renderings drop the wall-clock samples.
                        Some(Json::Null) => {}
                        Some(lat) => {
                            if lat.get("samples").and_then(Json::as_int).unwrap_or(0) < 1 {
                                errors.push(format!(
                                    "{at}.admit_latency.samples must be a positive integer"
                                ));
                            }
                            let mut num_of = |key: &str| -> f64 {
                                let v = lat.get(key).and_then(Json::as_num).filter(|&v| v >= 0.0);
                                if v.is_none() {
                                    errors.push(format!(
                                        "{at}.admit_latency.{key} must be a non-negative number"
                                    ));
                                }
                                v.unwrap_or(0.0)
                            };
                            let p50 = num_of("p50_us");
                            let p99 = num_of("p99_us");
                            let max = num_of("max_us");
                            if !(p50 <= p99 && p99 <= max) {
                                errors.push(format!(
                                    "{at}.admit_latency percentiles must be ordered \
                                     (p50 <= p99 <= max)"
                                ));
                            }
                        }
                    }
                }
                if point
                    .get("log_hash")
                    .and_then(Json::as_str)
                    .is_none_or(str::is_empty)
                {
                    errors.push(format!("{at}.log_hash must be a non-empty string"));
                }
            }
        }
    }

    if let Some(timing) = doc.get("timing") {
        if timing.get("workers").and_then(Json::as_int).unwrap_or(0) < 1 {
            errors.push("timing.workers must be a positive integer".to_string());
        }
        for key in ["flatten_s", "run_s", "aggregate_s", "total_s"] {
            if !timing
                .get(key)
                .and_then(Json::as_num)
                .is_some_and(|v| v >= 0.0)
            {
                errors.push(format!("timing.{key} must be a non-negative number"));
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Validates a serialized perf report against schema v4 (the
/// `BENCH_perf.json` document written by `snsp-experiments perf`;
/// v4 added `results.peak_rss_kb`, a process-level gauge that may be
/// `null` on platforms without `/proc/self/status`).
///
/// Beyond structure, the correctness invariants are enforced: every
/// engine-comparison row must declare `costs_match: true` — a perf
/// report documenting a semantic divergence between the incremental
/// engine and its reference oracle is invalid by definition.
///
/// Returns every violation found (empty ⇒ valid); a parse failure is a
/// single violation.
pub fn validate_perf_report(text: &str) -> Result<(), Vec<String>> {
    let doc = match parse(text) {
        Ok(doc) => doc,
        Err(e) => return Err(vec![format!("not JSON: {e}")]),
    };
    let mut errors = Vec::new();
    check_kind(&doc, Some("perf"), &mut errors);
    let mut check = |cond: bool, msg: &str| {
        if !cond {
            errors.push(msg.to_string());
        }
    };

    check(
        doc.get("schema_version").and_then(Json::as_int) == Some(PERF_SCHEMA_VERSION),
        "schema_version must be the integer 4",
    );
    check(
        doc.get("generator")
            .and_then(Json::as_str)
            .is_some_and(|s| s.starts_with("snsp-experiments")),
        "generator must be an snsp-experiments version string",
    );
    check(
        doc.get("campaign")
            .and_then(Json::as_str)
            .is_some_and(|s| !s.is_empty()),
        "campaign must be a non-empty string",
    );

    let mut point_count = None;
    let mut bb_count = None;
    match doc.get("config") {
        None => errors.push("config object missing".to_string()),
        Some(config) => {
            if config.get("seeds").and_then(Json::as_int).unwrap_or(0) < 1 {
                errors.push("config.seeds must be a positive integer".to_string());
            }
            match config.get("points").and_then(Json::as_arr) {
                None => errors.push("config.points must be an array".to_string()),
                Some(points) => {
                    for (i, p) in points.iter().enumerate() {
                        if p.get("label").and_then(Json::as_str).is_none() {
                            errors.push(format!("config.points[{i}].label must be a string"));
                        }
                        if p.get("n_ops").and_then(Json::as_int).unwrap_or(0) < 1 {
                            errors.push(format!(
                                "config.points[{i}].n_ops must be a positive integer"
                            ));
                        }
                        if p.get("alpha").and_then(Json::as_num).is_none() {
                            errors.push(format!("config.points[{i}].alpha must be a number"));
                        }
                    }
                    point_count = Some(points.len());
                }
            }
            match config.get("bb_points").and_then(Json::as_arr) {
                None => errors.push("config.bb_points must be an array".to_string()),
                Some(points) => {
                    for (i, p) in points.iter().enumerate() {
                        if p.get("label").and_then(Json::as_str).is_none() {
                            errors.push(format!("config.bb_points[{i}].label must be a string"));
                        }
                        for key in ["n_ops", "node_budget"] {
                            if p.get(key).and_then(Json::as_int).unwrap_or(0) < 1 {
                                errors.push(format!(
                                    "config.bb_points[{i}].{key} must be a positive integer"
                                ));
                            }
                        }
                        if p.get("homogeneous").and_then(Json::as_bool).is_none() {
                            errors.push(format!(
                                "config.bb_points[{i}].homogeneous must be a boolean"
                            ));
                        }
                    }
                    bb_count = Some(points.len());
                }
            }
            if config
                .get("probe_n_ops")
                .and_then(Json::as_int)
                .unwrap_or(0)
                < 1
            {
                errors.push("config.probe_n_ops must be a positive integer".to_string());
            }
        }
    }

    let ms = |obj: &Json, key: &str| -> bool {
        obj.get(key)
            .and_then(Json::as_num)
            .is_some_and(|v| v >= 0.0)
    };
    match doc.get("results") {
        None => errors.push("results object missing".to_string()),
        Some(results) => {
            match results.get("heuristics").and_then(Json::as_arr) {
                None => errors.push("results.heuristics must be an array".to_string()),
                Some(points) => {
                    if let Some(n) = point_count {
                        if points.len() != n {
                            errors.push(format!(
                                "results.heuristics has {} entries but config.points has {n}",
                                points.len()
                            ));
                        }
                    }
                    for (i, point) in points.iter().enumerate() {
                        let at = format!("results.heuristics[{i}]");
                        if point.get("label").and_then(Json::as_str).is_none() {
                            errors.push(format!("{at}.label must be a string"));
                        }
                        match point.get("rows").and_then(Json::as_arr) {
                            None => errors.push(format!("{at}.rows must be an array")),
                            Some(rows) => {
                                for (j, row) in rows.iter().enumerate() {
                                    let at = format!("{at}.rows[{j}]");
                                    if row.get("name").and_then(Json::as_str).is_none() {
                                        errors.push(format!("{at}.name must be a string"));
                                    }
                                    let runs = row.get("runs").and_then(Json::as_int);
                                    let feasible = row.get("feasible").and_then(Json::as_int);
                                    if !matches!((runs, feasible),
                                        (Some(r), Some(f)) if (0..=r).contains(&f))
                                    {
                                        errors.push(format!(
                                            "{at} needs integer runs >= feasible >= 0"
                                        ));
                                    }
                                    for key in ["incremental_ms", "oracle_ms"] {
                                        if !ms(row, key) {
                                            errors.push(format!(
                                                "{at}.{key} must be a non-negative number"
                                            ));
                                        }
                                    }
                                    if !row
                                        .get("speedup")
                                        .and_then(Json::as_num)
                                        .is_some_and(|v| v > 0.0)
                                    {
                                        errors.push(format!(
                                            "{at}.speedup must be a positive number"
                                        ));
                                    }
                                    if row.get("costs_match").and_then(Json::as_bool) != Some(true)
                                    {
                                        errors.push(format!("{at}.costs_match must be true"));
                                    }
                                }
                            }
                        }
                    }
                }
            }
            match results.get("bb").and_then(Json::as_arr) {
                None => errors.push("results.bb must be an array".to_string()),
                Some(rows) => {
                    if let Some(n) = bb_count {
                        if rows.len() != n {
                            errors.push(format!(
                                "results.bb has {} entries but config.bb_points has {n}",
                                rows.len()
                            ));
                        }
                    }
                    for (i, row) in rows.iter().enumerate() {
                        let at = format!("results.bb[{i}]");
                        if row.get("label").and_then(Json::as_str).is_none() {
                            errors.push(format!("{at}.label must be a string"));
                        }
                        for engine in ["incremental", "reference"] {
                            match row.get(engine) {
                                None => errors.push(format!("{at}.{engine} object missing")),
                                Some(e) => {
                                    if e.get("nodes").and_then(Json::as_int).unwrap_or(-1) < 0 {
                                        errors.push(format!(
                                            "{at}.{engine}.nodes must be a non-negative integer"
                                        ));
                                    }
                                    if !ms(e, "ms") || !ms(e, "nodes_per_sec") {
                                        errors.push(format!(
                                            "{at}.{engine} needs non-negative ms and nodes_per_sec"
                                        ));
                                    }
                                }
                            }
                        }
                        for key in ["wall_speedup", "node_ratio"] {
                            if !row.get(key).and_then(Json::as_num).is_some_and(|v| v > 0.0) {
                                errors.push(format!("{at}.{key} must be a positive number"));
                            }
                        }
                        if row.get("costs_match").and_then(Json::as_bool) != Some(true) {
                            errors.push(format!("{at}.costs_match must be true"));
                        }
                    }
                }
            }
            match results.get("demand_probe") {
                None => errors.push("results.demand_probe object missing".to_string()),
                Some(probe) => {
                    if probe.get("probes").and_then(Json::as_int).unwrap_or(0) < 1 {
                        errors.push("results.demand_probe.probes must be positive".to_string());
                    }
                    for key in ["incremental_ms", "oracle_ms"] {
                        if !ms(probe, key) {
                            errors.push(format!(
                                "results.demand_probe.{key} must be a non-negative number"
                            ));
                        }
                    }
                    if !probe
                        .get("speedup")
                        .and_then(Json::as_num)
                        .is_some_and(|v| v > 0.0)
                    {
                        errors
                            .push("results.demand_probe.speedup must be a positive number".into());
                    }
                    if probe.get("accepted_match").and_then(Json::as_bool) != Some(true) {
                        errors.push("results.demand_probe.accepted_match must be true".into());
                    }
                }
            }
            // v4: the process peak-RSS high-water mark, null when the
            // platform offers no `/proc/self/status` to read it from.
            match results.get("peak_rss_kb") {
                None => errors.push("results.peak_rss_kb key missing".to_string()),
                Some(Json::Null) => {}
                Some(v) => {
                    if v.as_int().is_none_or(|kb| kb < 0) {
                        errors.push(
                            "results.peak_rss_kb must be a non-negative integer or null"
                                .to_string(),
                        );
                    }
                }
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Validates a serialized telemetry report against schema v5 (the
/// `TELEMETRY.json` document written by `snsp-experiments
/// --telemetry-out`).
///
/// The document splits into a **deterministic core** (`deterministic`:
/// counters and histograms of `Class::Det` metrics — byte-identical at
/// any worker count) and a **wall-clock overlay** (`overlay`: the
/// scheduling- and clock-dependent rest), which stable renderings null
/// out entirely.
///
/// Returns every violation found (empty ⇒ valid); a parse failure is a
/// single violation.
pub fn validate_telemetry_report(text: &str) -> Result<(), Vec<String>> {
    let doc = match parse(text) {
        Ok(doc) => doc,
        Err(e) => return Err(vec![format!("not JSON: {e}")]),
    };
    let mut errors = Vec::new();
    check_kind(&doc, Some("telemetry"), &mut errors);
    let mut check = |cond: bool, msg: &str| {
        if !cond {
            errors.push(msg.to_string());
        }
    };

    check(
        doc.get("schema_version").and_then(Json::as_int) == Some(TELEMETRY_SCHEMA_VERSION),
        "schema_version must be the integer 5",
    );
    check(
        doc.get("generator")
            .and_then(Json::as_str)
            .is_some_and(|s| s.starts_with("snsp-")),
        "generator must be an snsp tool version string",
    );
    check(
        doc.get("campaign")
            .and_then(Json::as_str)
            .is_some_and(|s| !s.is_empty()),
        "campaign must be a non-empty string",
    );

    match doc.get("deterministic") {
        None => errors.push("deterministic object missing".to_string()),
        Some(det) => validate_metric_block(det, "deterministic", false, &mut errors),
    }
    match doc.get("overlay") {
        None => errors.push("overlay key missing (null it for the stable form)".to_string()),
        // Stable renderings drop the wall-clock overlay entirely.
        Some(Json::Null) => {}
        Some(overlay) => validate_metric_block(overlay, "overlay", true, &mut errors),
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Validates one telemetry metric block (`deterministic` or `overlay`).
/// Only the overlay may carry gauges and spans — the deterministic core
/// holds counters and histograms alone.
fn validate_metric_block(block: &Json, at: &str, overlay: bool, errors: &mut Vec<String>) {
    match block.get("counters").and_then(Json::as_arr) {
        None => errors.push(format!("{at}.counters must be an array")),
        Some(counters) => {
            for (i, c) in counters.iter().enumerate() {
                if c.get("name")
                    .and_then(Json::as_str)
                    .is_none_or(str::is_empty)
                {
                    errors.push(format!(
                        "{at}.counters[{i}].name must be a non-empty string"
                    ));
                }
                if c.get("value").and_then(Json::as_int).is_none_or(|v| v < 0) {
                    errors.push(format!(
                        "{at}.counters[{i}].value must be a non-negative integer"
                    ));
                }
            }
        }
    }
    match block.get("histograms").and_then(Json::as_arr) {
        None => errors.push(format!("{at}.histograms must be an array")),
        Some(hists) => {
            for (i, h) in hists.iter().enumerate() {
                let at = format!("{at}.histograms[{i}]");
                if h.get("name")
                    .and_then(Json::as_str)
                    .is_none_or(str::is_empty)
                {
                    errors.push(format!("{at}.name must be a non-empty string"));
                }
                if h.get("count").and_then(Json::as_int).is_none_or(|v| v < 1) {
                    errors.push(format!(
                        "{at}.count must be a positive integer \
                         (untouched histograms are not emitted)"
                    ));
                }
                let mut num_of = |key: &str| -> f64 {
                    let v = h.get(key).and_then(Json::as_num);
                    if v.is_none() {
                        errors.push(format!("{at}.{key} must be a number"));
                    }
                    v.unwrap_or(0.0)
                };
                let min = num_of("min");
                let p50 = num_of("p50");
                let p90 = num_of("p90");
                let p99 = num_of("p99");
                let max = num_of("max");
                if !(min <= p50 && p50 <= p90 && p90 <= p99 && p99 <= max) {
                    errors.push(format!(
                        "{at} percentiles must be ordered (min <= p50 <= p90 <= p99 <= max)"
                    ));
                }
            }
        }
    }
    if !overlay {
        for key in ["gauges", "spans"] {
            if block.get(key).is_some() {
                errors.push(format!(
                    "deterministic.{key} is not allowed — gauges and spans are \
                     wall-clock/scheduling state and belong to the overlay"
                ));
            }
        }
        return;
    }
    match block.get("gauges").and_then(Json::as_arr) {
        None => errors.push(format!("{at}.gauges must be an array")),
        Some(gauges) => {
            for (i, g) in gauges.iter().enumerate() {
                if g.get("name")
                    .and_then(Json::as_str)
                    .is_none_or(str::is_empty)
                {
                    errors.push(format!("{at}.gauges[{i}].name must be a non-empty string"));
                }
                if g.get("value").and_then(Json::as_int).is_none_or(|v| v < 0) {
                    errors.push(format!(
                        "{at}.gauges[{i}].value must be a non-negative integer"
                    ));
                }
            }
        }
    }
    match block.get("spans").and_then(Json::as_arr) {
        None => errors.push(format!("{at}.spans must be an array")),
        Some(spans) => {
            for (i, s) in spans.iter().enumerate() {
                if s.get("name")
                    .and_then(Json::as_str)
                    .is_none_or(str::is_empty)
                {
                    errors.push(format!("{at}.spans[{i}].name must be a non-empty string"));
                }
                if s.get("count").and_then(Json::as_int).is_none_or(|v| v < 1) {
                    errors.push(format!("{at}.spans[{i}].count must be a positive integer"));
                }
                if !s
                    .get("total_ms")
                    .and_then(Json::as_num)
                    .is_some_and(|v| v >= 0.0)
                {
                    errors.push(format!(
                        "{at}.spans[{i}].total_ms must be a non-negative number"
                    ));
                }
            }
        }
    }
}

/// Validates a serialized refinement report against schema v4 (the
/// `BENCH_refine.json` document written by `snsp-search` /
/// `snsp-experiments refine`).
///
/// Beyond structure, the algorithm's invariant is enforced: every result
/// row must declare `never_worse: true` — a refinement report
/// documenting a cost regression is invalid by definition — and the
/// mean refined cost may not exceed the mean starting cost.
///
/// Returns every violation found (empty ⇒ valid); a parse failure is a
/// single violation.
pub fn validate_refine_report(text: &str) -> Result<(), Vec<String>> {
    let doc = match parse(text) {
        Ok(doc) => doc,
        Err(e) => return Err(vec![format!("not JSON: {e}")]),
    };
    let mut errors = Vec::new();
    check_kind(&doc, Some("refine"), &mut errors);
    let mut check = |cond: bool, msg: &str| {
        if !cond {
            errors.push(msg.to_string());
        }
    };

    check(
        doc.get("schema_version").and_then(Json::as_int) == Some(REFINE_SCHEMA_VERSION),
        "schema_version must be the integer 4",
    );
    check(
        doc.get("generator")
            .and_then(Json::as_str)
            .is_some_and(|s| s.starts_with("snsp-search")),
        "generator must be an snsp-search version string",
    );
    check(
        doc.get("campaign")
            .and_then(Json::as_str)
            .is_some_and(|s| !s.is_empty()),
        "campaign must be a non-empty string",
    );

    let point_count = match doc.get("config") {
        None => {
            errors.push("config object missing".to_string());
            None
        }
        Some(config) => {
            if config.get("seeds").and_then(Json::as_int).unwrap_or(0) < 1 {
                errors.push("config.seeds must be a positive integer".to_string());
            }
            if config
                .get("driver")
                .and_then(Json::as_str)
                .is_none_or(str::is_empty)
            {
                errors.push("config.driver must be a non-empty string".to_string());
            }
            for key in ["max_evals", "top_k"] {
                if config.get(key).and_then(Json::as_int).unwrap_or(0) < 1 {
                    errors.push(format!("config.{key} must be a positive integer"));
                }
            }
            match config.get("points").and_then(Json::as_arr) {
                None => {
                    errors.push("config.points must be an array".to_string());
                    None
                }
                Some(points) => {
                    for (i, p) in points.iter().enumerate() {
                        if p.get("label").and_then(Json::as_str).is_none() {
                            errors.push(format!("config.points[{i}].label must be a string"));
                        }
                        if p.get("n_ops").and_then(Json::as_int).unwrap_or(0) < 1 {
                            errors.push(format!(
                                "config.points[{i}].n_ops must be a positive integer"
                            ));
                        }
                        if p.get("alpha").and_then(Json::as_num).is_none() {
                            errors.push(format!("config.points[{i}].alpha must be a number"));
                        }
                        if p.get("homogeneous").and_then(Json::as_bool).is_none() {
                            errors
                                .push(format!("config.points[{i}].homogeneous must be a boolean"));
                        }
                    }
                    Some(points.len())
                }
            }
        }
    };

    match doc.get("results").and_then(Json::as_arr) {
        None => errors.push("results must be an array".to_string()),
        Some(results) => {
            if let Some(n) = point_count {
                if results.len() != n {
                    errors.push(format!(
                        "results has {} entries but config.points has {n}",
                        results.len()
                    ));
                }
            }
            for (i, point) in results.iter().enumerate() {
                let at = format!("results[{i}]");
                if point.get("label").and_then(Json::as_str).is_none() {
                    errors.push(format!("{at}.label must be a string"));
                }
                let runs = point.get("runs").and_then(Json::as_int);
                let feasible = point.get("feasible").and_then(Json::as_int);
                if !matches!((runs, feasible), (Some(r), Some(f)) if (0..=r).contains(&f)) {
                    errors.push(format!("{at} needs integer runs >= feasible >= 0"));
                }
                let feasible = feasible.unwrap_or(0);
                let cost = |key: &str| point.get(key).and_then(Json::as_num);
                for key in ["mean_start_cost", "mean_refined_cost"] {
                    match point.get(key) {
                        Some(Json::Null) if feasible == 0 => {}
                        Some(Json::Num(_)) | Some(Json::Int(_)) if feasible > 0 => {}
                        _ => errors.push(format!(
                            "{at}.{key} must be a number iff feasible > 0 (else null)"
                        )),
                    }
                }
                if let (Some(start), Some(refined)) =
                    (cost("mean_start_cost"), cost("mean_refined_cost"))
                {
                    if refined > start + 1e-9 {
                        errors.push(format!("{at}: mean_refined_cost exceeds mean_start_cost"));
                    }
                }
                match point.get("improved").and_then(Json::as_int) {
                    Some(imp) if (0..=feasible).contains(&imp) => {}
                    _ => errors.push(format!("{at}.improved must be an integer in [0, feasible]")),
                }
                if point.get("never_worse").and_then(Json::as_bool) != Some(true) {
                    errors.push(format!("{at}.never_worse must be true"));
                }
                for key in ["mean_evals", "mean_accepted", "mean_lower_bound"] {
                    if !point
                        .get(key)
                        .and_then(Json::as_num)
                        .is_some_and(|v| v >= 0.0)
                    {
                        errors.push(format!("{at}.{key} must be a non-negative number"));
                    }
                }
                match point.get("exact") {
                    None => errors.push(format!("{at}.exact key missing")),
                    Some(Json::Null) => {}
                    Some(e) => {
                        let solved = e.get("solved").and_then(Json::as_int);
                        if solved.is_none_or(|s| s < 0) {
                            errors
                                .push(format!("{at}.exact.solved must be a non-negative integer"));
                        }
                        if e.get("optimal").and_then(Json::as_bool).is_none() {
                            errors.push(format!("{at}.exact.optimal must be a boolean"));
                        }
                        for key in ["mean_cost", "max_gap_pct"] {
                            match e.get(key) {
                                Some(Json::Null) | Some(Json::Num(_)) | Some(Json::Int(_)) => {}
                                _ => errors
                                    .push(format!("{at}.exact.{key} must be a number or null")),
                            }
                        }
                    }
                }
            }
        }
    }

    if let Some(timing) = doc.get("timing") {
        if timing.get("workers").and_then(Json::as_int).unwrap_or(0) < 1 {
            errors.push("timing.workers must be a positive integer".to_string());
        }
        for key in ["flatten_s", "run_s", "aggregate_s", "total_s"] {
            if !timing
                .get(key)
                .and_then(Json::as_num)
                .is_some_and(|v| v >= 0.0)
            {
                errors.push(format!("timing.{key} must be a non-negative number"));
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn validate_heur_row(row: &Json, i: usize, j: usize, errors: &mut Vec<String>) {
    let at = format!("results[{i}].heuristics[{j}]");
    if row.get("name").and_then(Json::as_str).is_none() {
        errors.push(format!("{at}.name must be a string"));
    }
    let runs = row.get("runs").and_then(Json::as_int);
    let feasible = row.get("feasible").and_then(Json::as_int);
    match (runs, feasible) {
        (Some(r), Some(f)) if (0..=r).contains(&f) => {
            let has_cost = !matches!(row.get("mean_cost"), Some(Json::Null) | None);
            if has_cost != (f > 0) {
                errors.push(format!("{at}.mean_cost must be present iff feasible > 0"));
            }
        }
        _ => errors.push(format!("{at} needs integer runs >= feasible >= 0")),
    }
    if !row
        .get("feasibility_pct")
        .and_then(Json::as_num)
        .is_some_and(|v| (0.0..=100.0).contains(&v))
    {
        errors.push(format!("{at}.feasibility_pct must be in [0, 100]"));
    }
    for key in ["mean_cost", "mean_procs"] {
        match row.get(key) {
            Some(Json::Null) | Some(Json::Num(_)) | Some(Json::Int(_)) => {}
            _ => errors.push(format!("{at}.{key} must be a number or null")),
        }
    }
}

fn validate_reference(reference: &Json, i: usize, errors: &mut Vec<String>) {
    let at = format!("results[{i}].reference");
    let runs = reference.get("runs").and_then(Json::as_int);
    let solved = reference.get("solved").and_then(Json::as_int);
    if !matches!((runs, solved), (Some(r), Some(s)) if (0..=r).contains(&s)) {
        errors.push(format!("{at} needs integer runs >= solved >= 0"));
    }
    if reference.get("optimal").and_then(Json::as_bool).is_none() {
        errors.push(format!("{at}.optimal must be a boolean"));
    }
    match reference.get("mean_cost") {
        Some(Json::Null) | Some(Json::Num(_)) | Some(Json::Int(_)) => {}
        _ => errors.push(format!("{at}.mean_cost must be a number or null")),
    }
}

/// Validates a serialized chaos campaign report against schema v6 (the
/// `BENCH_chaos.json` document written by `snsp-serve`'s fault-injection
/// campaigns; `kind: "chaos"`).
///
/// Beyond structure, this enforces the recovery *semantics* the chaos
/// tier promises: every drop retransmitted, every duplicate discarded,
/// every crash recovered, `crash_fingerprint_match` true wherever
/// crashes were scheduled, and zero invariant-audit failures.
///
/// Returns every violation found (empty ⇒ valid); a parse failure is a
/// single violation.
pub fn validate_chaos_report(text: &str) -> Result<(), Vec<String>> {
    let doc = match parse(text) {
        Ok(doc) => doc,
        Err(e) => return Err(vec![format!("not JSON: {e}")]),
    };
    let mut errors = Vec::new();
    check_kind(&doc, Some("chaos"), &mut errors);
    let mut check = |cond: bool, msg: &str| {
        if !cond {
            errors.push(msg.to_string());
        }
    };

    check(
        doc.get("schema_version").and_then(Json::as_int) == Some(CHAOS_SCHEMA_VERSION),
        "schema_version must be the integer 6",
    );
    check(
        doc.get("generator")
            .and_then(Json::as_str)
            .is_some_and(|s| s.starts_with("snsp-serve")),
        "generator must be an snsp-serve version string",
    );
    check(
        doc.get("campaign")
            .and_then(Json::as_str)
            .is_some_and(|s| !s.is_empty()),
        "campaign must be a non-empty string",
    );

    let point_count = match doc.get("config") {
        None => {
            errors.push("config object missing".to_string());
            None
        }
        Some(config) => {
            if config.get("seeds").and_then(Json::as_int).unwrap_or(0) < 1 {
                errors.push("config.seeds must be a positive integer".to_string());
            }
            if config.get("shards").and_then(Json::as_int).unwrap_or(0) < 1 {
                errors.push("config.shards must be a positive integer".to_string());
            }
            match config.get("points").and_then(Json::as_arr) {
                None => {
                    errors.push("config.points must be an array".to_string());
                    None
                }
                Some(points) => {
                    for (i, p) in points.iter().enumerate() {
                        if p.get("label").and_then(Json::as_str).is_none() {
                            errors.push(format!("config.points[{i}].label must be a string"));
                        }
                        for key in ["lambda", "mean_hold", "horizon"] {
                            if !p.get(key).and_then(Json::as_num).is_some_and(|v| v > 0.0) {
                                errors.push(format!(
                                    "config.points[{i}].{key} must be a positive number"
                                ));
                            }
                        }
                        match p.get("fault") {
                            None => {
                                errors.push(format!("config.points[{i}].fault object missing"));
                            }
                            Some(fault) => {
                                for key in [
                                    "crash_rate",
                                    "rack_rate",
                                    "msg_drop",
                                    "msg_dup",
                                    "msg_delay",
                                ] {
                                    if !fault
                                        .get(key)
                                        .and_then(Json::as_num)
                                        .is_some_and(|v| v >= 0.0)
                                    {
                                        errors.push(format!(
                                            "config.points[{i}].fault.{key} must be a \
                                             non-negative number"
                                        ));
                                    }
                                }
                                match fault.get("revoke") {
                                    None => errors.push(format!(
                                        "config.points[{i}].fault.revoke key missing"
                                    )),
                                    Some(Json::Null) => {}
                                    Some(r) => {
                                        for key in ["start", "end", "frac"] {
                                            if r.get(key).and_then(Json::as_num).is_none() {
                                                errors.push(format!(
                                                    "config.points[{i}].fault.revoke.{key} \
                                                     must be a number"
                                                ));
                                            }
                                        }
                                    }
                                }
                                if fault
                                    .get("retry")
                                    .and_then(|r| r.get("max_attempts"))
                                    .and_then(Json::as_int)
                                    .is_none()
                                {
                                    errors.push(format!(
                                        "config.points[{i}].fault.retry.max_attempts must be \
                                         an integer"
                                    ));
                                }
                            }
                        }
                    }
                    Some(points.len())
                }
            }
        }
    };

    match doc.get("results").and_then(Json::as_arr) {
        None => errors.push("results must be an array".to_string()),
        Some(results) => {
            if let Some(n) = point_count {
                if results.len() != n {
                    errors.push(format!(
                        "results has {} entries but config.points has {n}",
                        results.len()
                    ));
                }
            }
            for (i, point) in results.iter().enumerate() {
                let at = format!("results[{i}]");
                if point.get("label").and_then(Json::as_str).is_none() {
                    errors.push(format!("{at}.label must be a string"));
                }
                let mut int_of = |key: &str| -> Option<i64> {
                    let v = point.get(key).and_then(Json::as_int).filter(|&v| v >= 0);
                    if v.is_none() {
                        errors.push(format!("{at}.{key} must be a non-negative integer"));
                    }
                    v
                };
                let arrivals = int_of("arrivals");
                let admitted = int_of("admitted");
                let rejected = int_of("rejected");
                let crashes = int_of("crashes");
                let recoveries = int_of("recoveries");
                let dropped = int_of("msgs_dropped");
                let retransmitted = int_of("msgs_retransmitted");
                let duplicated = int_of("msgs_duplicated");
                let discarded = int_of("dups_discarded");
                let audit_failures = int_of("audit_failures");
                for key in [
                    "traces",
                    "departed",
                    "evicted",
                    "failures",
                    "faults_injected",
                    "rack_failures",
                    "revocations",
                    "msgs_delayed",
                    "retry_enqueued",
                    "readmitted",
                    "retry_dropped",
                    "shed",
                ] {
                    int_of(key);
                }
                if let (Some(a), Some(ad), Some(r)) = (arrivals, admitted, rejected) {
                    if ad + r != a {
                        errors.push(format!("{at}: admitted + rejected must equal arrivals"));
                    }
                }
                if let (Some(c), Some(r)) = (crashes, recoveries) {
                    if c != r {
                        errors.push(format!(
                            "{at}: every crash must recover (crashes == recoveries)"
                        ));
                    }
                }
                if let (Some(d), Some(r)) = (dropped, retransmitted) {
                    if d != r {
                        errors.push(format!(
                            "{at}: every dropped message must be retransmitted \
                             (msgs_dropped == msgs_retransmitted)"
                        ));
                    }
                }
                if let (Some(d), Some(x)) = (duplicated, discarded) {
                    if d != x {
                        errors.push(format!(
                            "{at}: every duplicated message must be discarded \
                             (msgs_duplicated == dups_discarded)"
                        ));
                    }
                }
                if audit_failures.is_some_and(|v| v != 0) {
                    errors.push(format!(
                        "{at}.audit_failures must be 0 — a platform invariant broke under faults"
                    ));
                }
                for (key, lo, hi) in [("admission_rate", 0.0, 1.0), ("readmission_rate", 0.0, 1.0)]
                {
                    if !point
                        .get(key)
                        .and_then(Json::as_num)
                        .is_some_and(|v| (lo..=hi).contains(&v))
                    {
                        errors.push(format!("{at}.{key} must be a number in [{lo}, {hi}]"));
                    }
                }
                match point.get("crash_fingerprint_match") {
                    // Null ⇒ no crashes were scheduled at this point.
                    Some(Json::Null) => {
                        if crashes.is_some_and(|c| c > 0) {
                            errors.push(format!(
                                "{at}.crash_fingerprint_match must not be null when crashes > 0"
                            ));
                        }
                    }
                    Some(Json::Bool(true)) => {}
                    Some(Json::Bool(false)) => errors.push(format!(
                        "{at}.crash_fingerprint_match is false — a crash recovery diverged \
                         from the uninterrupted replay"
                    )),
                    _ => errors.push(format!(
                        "{at}.crash_fingerprint_match must be a boolean or null"
                    )),
                }
                if !point
                    .get("mean_final_cost")
                    .and_then(Json::as_num)
                    .is_some_and(|v| v >= 0.0)
                {
                    errors.push(format!(
                        "{at}.mean_final_cost must be a non-negative number"
                    ));
                }
                if point
                    .get("log_hash")
                    .and_then(Json::as_str)
                    .is_none_or(str::is_empty)
                {
                    errors.push(format!("{at}.log_hash must be a non-empty string"));
                }
            }
        }
    }

    if let Some(timing) = doc.get("timing") {
        if timing.get("workers").and_then(Json::as_int).unwrap_or(0) < 1 {
            errors.push("timing.workers must be a positive integer".to_string());
        }
        for key in ["flatten_s", "run_s", "aggregate_s", "total_s"] {
            if !timing
                .get(key)
                .and_then(Json::as_num)
                .is_some_and(|v| v >= 0.0)
            {
                errors.push(format!("timing.{key} must be a non-negative number"));
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Validates a serialized trace report (`TRACE.json`) against schema v7
/// (the deterministic event stream written by
/// `snsp-experiments --trace-out`).
///
/// Beyond structure, the stream's ordering invariant is enforced: the
/// `(run, tick, shard, seq)` stamps must be lexicographically
/// non-decreasing — the canonical sort every exporter applies, and the
/// property that makes two trace files byte-comparable.
///
/// Returns every violation found (empty ⇒ valid); a parse failure is a
/// single violation.
pub fn validate_trace_report(text: &str) -> Result<(), Vec<String>> {
    let doc = match parse(text) {
        Ok(doc) => doc,
        Err(e) => return Err(vec![format!("not JSON: {e}")]),
    };
    let mut errors = Vec::new();
    check_kind(&doc, Some("trace"), &mut errors);
    let mut check = |cond: bool, msg: &str| {
        if !cond {
            errors.push(msg.to_string());
        }
    };

    check(
        doc.get("schema_version").and_then(Json::as_int) == Some(TRACE_SCHEMA_VERSION),
        "schema_version must be the integer 7",
    );
    check(
        doc.get("generator")
            .and_then(Json::as_str)
            .is_some_and(|s| s.starts_with("snsp-")),
        "generator must be an snsp tool version string",
    );
    check(
        doc.get("campaign")
            .and_then(Json::as_str)
            .is_some_and(|s| !s.is_empty()),
        "campaign must be a non-empty string",
    );
    check(
        doc.get("dropped")
            .and_then(Json::as_int)
            .is_some_and(|v| v >= 0),
        "dropped must be a non-negative integer",
    );

    match doc.get("det_events").and_then(Json::as_arr) {
        None => errors.push("det_events must be an array".to_string()),
        Some(events) => {
            let mut prev: Option<(i64, i64, i64, i64)> = None;
            for (i, ev) in events.iter().enumerate() {
                let at = format!("det_events[{i}]");
                let mut int_of = |key: &str| -> i64 {
                    let v = ev.get(key).and_then(Json::as_int).filter(|&v| v >= 0);
                    if v.is_none() {
                        errors.push(format!("{at}.{key} must be a non-negative integer"));
                    }
                    v.unwrap_or(0)
                };
                let stamp = (
                    int_of("run"),
                    int_of("tick"),
                    int_of("shard"),
                    int_of("seq"),
                );
                if ev
                    .get("event")
                    .and_then(Json::as_str)
                    .is_none_or(str::is_empty)
                {
                    errors.push(format!("{at}.event must be a non-empty string"));
                }
                if ev.get("detail").and_then(Json::as_str).is_none() {
                    errors.push(format!("{at}.detail must be a string (may be empty)"));
                }
                if prev.is_some_and(|p| stamp < p) {
                    errors.push(format!(
                        "{at}: (run, tick, shard, seq) must be non-decreasing \
                         (the canonical deterministic sort)"
                    ));
                }
                prev = Some(stamp);
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, Campaign, PointSpec, ReferenceConfig};
    use snsp_gen::ScenarioParams;

    fn rendered(include_timing: bool) -> String {
        let campaign = Campaign::new(
            "schema-test",
            vec![
                PointSpec::new("8", ScenarioParams::paper(8, 0.9)),
                PointSpec::new("12", ScenarioParams::paper(12, 1.3)),
            ],
            2,
        )
        .with_reference(ReferenceConfig {
            max_ops: 10,
            node_budget: 100_000,
            workers: 1,
        })
        .with_workers(2);
        run_campaign(&campaign).render_json(include_timing)
    }

    #[test]
    fn real_reports_validate() {
        validate_report(&rendered(true)).expect("timed report validates");
        validate_report(&rendered(false)).expect("stable report validates");
    }

    #[test]
    fn non_json_is_one_violation() {
        let errors = validate_report("{oops").unwrap_err();
        assert_eq!(errors.len(), 1);
        assert!(errors[0].starts_with("not JSON"));
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let text = rendered(false).replace("\"schema_version\": 1", "\"schema_version\": 2");
        let errors = validate_report(&text).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("schema_version")));
    }

    #[test]
    fn missing_results_is_rejected() {
        let text = "{\"schema_version\": 1, \"generator\": \"snsp-sweep 0\", \
                    \"campaign\": \"x\"}";
        let errors = validate_report(text).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("config")));
        assert!(errors.iter().any(|e| e.contains("results")));
    }

    /// A minimal well-formed serve document (what `snsp-serve` renders;
    /// kept in sync by snsp-serve's own round-trip tests).
    /// A legacy v2 document (pre-sharding: no `config.shards`, no
    /// `admit_latency` rows) — must stay readable forever.
    fn serve_doc_v2() -> String {
        serve_doc()
            .replace("\"schema_version\": 3", "\"schema_version\": 2")
            .replace("    \"shards\": 4,\n", "")
            .replace(
                "      \"admit_latency\": {\"samples\": 18, \"p50_us\": 850.0, \
                 \"p99_us\": 2300.0, \"max_us\": 2400.0},\n",
                "",
            )
    }

    fn serve_doc() -> String {
        r#"{
  "schema_version": 3,
  "generator": "snsp-serve 0.1.0",
  "kind": "serve",
  "campaign": "unit",
  "config": {
    "seeds": 2,
    "slo_frac": 0.95,
    "shards": 4,
    "points": [
      {
        "label": "poisson",
        "lambda": 0.5,
        "mean_hold": 4.0,
        "pareto_shape": 2.5,
        "horizon": 40.0,
        "fail_rate": 0.1,
        "n_ops": [8, 20],
        "alpha": [0.9, 1.2],
        "rho": [0.5, 1.5],
        "burst": {"period": 10.0, "width": 2.0, "multiplier": 4.0}
      }
    ]
  },
  "results": [
    {
      "label": "poisson",
      "traces": 2,
      "arrivals": 20,
      "admitted": 18,
      "rejected": 2,
      "departed": 12,
      "evicted": 1,
      "failures": 3,
      "admission_rate": 0.9,
      "mean_cost_integral": 301920.0,
      "mean_utilization": 0.42,
      "mean_final_cost": 15096.0,
      "peak_procs": 6,
      "slo_checks": 18,
      "slo_violations": 0,
      "admit_latency": {"samples": 18, "p50_us": 850.0, "p99_us": 2300.0, "max_us": 2400.0},
      "log_hash": "9f3cafc4"
    }
  ]
}"#
        .to_string()
    }

    #[test]
    fn serve_schema_accepts_well_formed_documents() {
        validate_serve_report(&serve_doc()).expect("serve v3 doc validates");
    }

    #[test]
    fn serve_schema_keeps_v2_documents_readable() {
        let v2 = serve_doc_v2();
        assert!(v2.contains("\"schema_version\": 2"), "substitution applied");
        assert!(!v2.contains("shards"), "substitution applied");
        assert!(!v2.contains("admit_latency"), "substitution applied");
        validate_serve_report(&v2).expect("legacy v2 doc validates");
    }

    #[test]
    fn serve_v3_requires_the_new_columns() {
        // A v3 stamp without the v3 fields is invalid...
        let broken = serve_doc_v2().replace("\"schema_version\": 2", "\"schema_version\": 3");
        let errors = validate_serve_report(&broken).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("config.shards")));
        assert!(errors.iter().any(|e| e.contains("admit_latency")));
        // ...but a stable rendering may null the wall-clock column.
        let stable = serve_doc().replace(
            "{\"samples\": 18, \"p50_us\": 850.0, \"p99_us\": 2300.0, \"max_us\": 2400.0}",
            "null",
        );
        validate_serve_report(&stable).expect("null admit_latency is the stable form");
        // Percentiles must be ordered.
        let unordered = serve_doc().replace("\"p99_us\": 2300.0", "\"p99_us\": 9300.0");
        let errors = validate_serve_report(&unordered).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("ordered")), "{errors:?}");
        // Versions past the current one are rejected.
        let future = serve_doc().replace("\"schema_version\": 3", "\"schema_version\": 4");
        let errors = validate_serve_report(&future).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("schema_version")));
    }

    #[test]
    fn serve_schema_rejects_v1_and_broken_documents() {
        // A campaign (v1) report is not a serve report.
        let errors = validate_serve_report(&rendered(false)).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("schema_version")));
        assert!(errors.iter().any(|e| e.contains("kind")));
        // Admissions must reconcile with arrivals.
        let broken = serve_doc().replace("\"admitted\": 18", "\"admitted\": 19");
        let errors = validate_serve_report(&broken).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("admitted + rejected")));
        // A missing burst key (as opposed to an explicit null) is flagged.
        let broken = serve_doc().replace(
            "\"burst\": {\"period\": 10.0, \"width\": 2.0, \"multiplier\": 4.0}\n",
            "\"unrelated\": 1\n",
        );
        let errors = validate_serve_report(&broken).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("burst")), "{errors:?}");
    }

    /// A minimal well-formed perf document (what `snsp-experiments perf`
    /// renders; kept in sync by that crate's own round-trip test).
    fn perf_doc() -> String {
        r#"{
  "schema_version": 4,
  "generator": "snsp-experiments 0.1.0",
  "kind": "perf",
  "campaign": "perf-ci",
  "config": {
    "seeds": 2,
    "points": [
      {"label": "140", "n_ops": 140, "alpha": 0.9}
    ],
    "bb_points": [
      {"label": "hom-16", "n_ops": 16, "alpha": 0.9, "homogeneous": true, "node_budget": 500000}
    ],
    "probe_n_ops": 500
  },
  "results": {
    "heuristics": [
      {
        "label": "140",
        "rows": [
          {
            "name": "Subtree-Bottom-Up",
            "runs": 2,
            "feasible": 2,
            "incremental_ms": 0.08,
            "oracle_ms": 0.12,
            "speedup": 1.5,
            "costs_match": true
          }
        ]
      }
    ],
    "bb": [
      {
        "label": "hom-16",
        "incremental": {"nodes": 17, "ms": 0.02, "nodes_per_sec": 850000.0},
        "reference": {"nodes": 170, "ms": 0.2, "nodes_per_sec": 850000.0},
        "wall_speedup": 10.0,
        "node_ratio": 10.0,
        "costs_match": true
      }
    ],
    "demand_probe": {
      "probes": 499,
      "incremental_ms": 0.05,
      "oracle_ms": 5.0,
      "speedup": 100.0,
      "accepted_match": true
    },
    "peak_rss_kb": 14336
  }
}"#
        .to_string()
    }

    #[test]
    fn perf_schema_accepts_well_formed_documents() {
        validate_perf_report(&perf_doc()).expect("perf doc validates");
    }

    #[test]
    fn perf_schema_rejects_divergence_and_other_kinds() {
        // A v1 campaign report is not a perf report.
        let errors = validate_perf_report(&rendered(false)).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("schema_version")));
        assert!(errors.iter().any(|e| e.contains("kind")));
        // An engine divergence invalidates the document outright.
        let broken = perf_doc().replacen("\"costs_match\": true", "\"costs_match\": false", 1);
        let errors = validate_perf_report(&broken).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("costs_match")),
            "{errors:?}"
        );
        // Zero or negative speedups are structural nonsense.
        let broken = perf_doc().replace("\"speedup\": 100.0", "\"speedup\": 0.0");
        let errors = validate_perf_report(&broken).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("speedup")), "{errors:?}");
        // A missing probe block is flagged.
        let broken = perf_doc().replace("\"demand_probe\"", "\"unrelated\"");
        let errors = validate_perf_report(&broken).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("demand_probe")),
            "{errors:?}"
        );
    }

    #[test]
    fn perf_v4_requires_the_rss_column_but_tolerates_null() {
        // v3 documents (no peak_rss_kb) no longer validate...
        let v3 = perf_doc()
            .replace("\"schema_version\": 4", "\"schema_version\": 3")
            .replace(",\n    \"peak_rss_kb\": 14336", "");
        let errors = validate_perf_report(&v3).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("schema_version")));
        assert!(errors.iter().any(|e| e.contains("peak_rss_kb")));
        // ...but a platform without /proc may null the gauge.
        let nulled = perf_doc().replace("\"peak_rss_kb\": 14336", "\"peak_rss_kb\": null");
        validate_perf_report(&nulled).expect("null RSS is the no-procfs form");
        // Negative high-water marks are nonsense.
        let broken = perf_doc().replace("\"peak_rss_kb\": 14336", "\"peak_rss_kb\": -1");
        let errors = validate_perf_report(&broken).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("peak_rss_kb")),
            "{errors:?}"
        );
    }

    /// A minimal well-formed telemetry document (what `snsp-experiments
    /// --telemetry-out` renders; kept in sync by that crate's tests).
    fn telemetry_doc() -> String {
        r#"{
  "schema_version": 5,
  "generator": "snsp-experiments 0.1.0",
  "kind": "telemetry",
  "campaign": "serve sharded-ci",
  "deterministic": {
    "counters": [
      {"name": "serve.admitted", "value": 42},
      {"name": "serve.shardmsg.admitted", "value": 42}
    ],
    "histograms": [
      {"name": "serve.shard.admitted", "count": 4, "min": 8.0, "p50": 10.0, "p90": 12.0, "p99": 12.0, "max": 12.0}
    ]
  },
  "overlay": {
    "counters": [
      {"name": "pool.steals", "value": 7}
    ],
    "histograms": [
      {"name": "serve.admit.latency_us", "count": 42, "min": 120.0, "p50": 850.0, "p90": 1900.0, "p99": 2300.0, "max": 2400.0}
    ],
    "gauges": [
      {"name": "serve.peak_rss_kb", "value": 14336}
    ],
    "spans": [
      {"name": "pool.busy", "count": 4, "total_ms": 12.5}
    ]
  }
}"#
        .to_string()
    }

    #[test]
    fn telemetry_schema_accepts_well_formed_documents() {
        validate_telemetry_report(&telemetry_doc()).expect("telemetry doc validates");
        // The stable form nulls the whole wall-clock overlay.
        let (head, _) = telemetry_doc()
            .split_once("\"overlay\"")
            .map(|(h, t)| (h.to_string(), t.to_string()))
            .unwrap();
        let stable = format!("{head}\"overlay\": null\n}}");
        validate_telemetry_report(&stable).expect("null overlay is the stable form");
    }

    #[test]
    fn telemetry_schema_rejects_misfiled_metrics_and_cross_kinds() {
        // Wall-clock state may not masquerade as deterministic: a span
        // or gauge array inside the deterministic core is an error.
        let broken = telemetry_doc().replace(
            "\"deterministic\": {\n    \"counters\"",
            "\"deterministic\": {\n    \"spans\": [],\n    \"counters\"",
        );
        let errors = validate_telemetry_report(&broken).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("deterministic.spans")),
            "{errors:?}"
        );
        // Percentiles must be ordered.
        let broken = telemetry_doc().replace("\"p50\": 850.0", "\"p50\": 9850.0");
        let errors = validate_telemetry_report(&broken).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("ordered")), "{errors:?}");
        // Other kinds are rejected by name, and vice versa.
        let errors = validate_telemetry_report(&perf_doc()).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("expected \"telemetry\"") && e.contains("found \"perf\"")),
            "{errors:?}"
        );
        let telemetry = telemetry_doc();
        assert!(validate_report(&telemetry).is_err());
        assert!(validate_serve_report(&telemetry).is_err());
        assert!(validate_perf_report(&telemetry).is_err());
        assert!(validate_refine_report(&telemetry).is_err());
    }

    /// A minimal well-formed refine document (what `snsp-search`
    /// renders; kept in sync by that crate's own round-trip tests).
    fn refine_doc() -> String {
        r#"{
  "schema_version": 4,
  "generator": "snsp-search 0.1.0",
  "kind": "refine",
  "campaign": "refine-ci",
  "config": {
    "seeds": 2,
    "driver": "first-improvement",
    "max_evals": 4096,
    "top_k": 3,
    "points": [
      {"label": "hom N=8", "n_ops": 8, "alpha": 0.9, "homogeneous": true},
      {"label": "het N=30", "n_ops": 30, "alpha": 0.9, "homogeneous": false}
    ]
  },
  "results": [
    {
      "label": "hom N=8",
      "runs": 2,
      "feasible": 2,
      "mean_start_cost": 16982.0,
      "mean_refined_cost": 15096.0,
      "improved": 1,
      "never_worse": true,
      "mean_evals": 120.0,
      "mean_accepted": 2.5,
      "exact": {"solved": 2, "optimal": true, "mean_cost": 15096.0, "max_gap_pct": 0.0},
      "mean_lower_bound": 7548.0
    },
    {
      "label": "het N=30",
      "runs": 2,
      "feasible": 2,
      "mean_start_cost": 30192.0,
      "mean_refined_cost": 28306.0,
      "improved": 2,
      "never_worse": true,
      "mean_evals": 800.0,
      "mean_accepted": 4.0,
      "exact": null,
      "mean_lower_bound": 15096.0
    }
  ]
}"#
        .to_string()
    }

    #[test]
    fn refine_schema_accepts_well_formed_documents() {
        validate_refine_report(&refine_doc()).expect("refine doc validates");
    }

    #[test]
    fn refine_schema_rejects_regressions_and_cross_kind_files() {
        // A v1 campaign report is not a refine report.
        let errors = validate_refine_report(&rendered(false)).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("schema_version")));
        assert!(errors.iter().any(|e| e.contains("kind")));
        // Nor are serve (v2) and perf (v3) documents.
        let errors = validate_refine_report(&serve_doc()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("kind")), "{errors:?}");
        let errors = validate_refine_report(&perf_doc()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("kind")), "{errors:?}");
        // A cost regression invalidates the document outright.
        let broken = refine_doc().replacen("\"never_worse\": true", "\"never_worse\": false", 1);
        let errors = validate_refine_report(&broken).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("never_worse")),
            "{errors:?}"
        );
        // So does a refined mean above the starting mean.
        let broken = refine_doc().replace(
            "\"mean_refined_cost\": 15096.0",
            "\"mean_refined_cost\": 17000.0",
        );
        let errors = validate_refine_report(&broken).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("exceeds mean_start_cost")),
            "{errors:?}"
        );
        // A missing exact key (as opposed to an explicit null) is flagged.
        let broken = refine_doc().replacen("\"exact\": null", "\"unrelated\": null", 1);
        let errors = validate_refine_report(&broken).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("exact")), "{errors:?}");
        // `improved` cannot exceed `feasible`.
        let broken = refine_doc().replacen("\"improved\": 1", "\"improved\": 3", 1);
        let errors = validate_refine_report(&broken).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("improved")), "{errors:?}");
    }

    #[test]
    fn other_validators_reject_refine_documents() {
        // Cross-kind sniffing must fail loudly in every direction.
        let refine = refine_doc();
        assert!(validate_report(&refine).is_err());
        assert!(validate_serve_report(&refine).is_err());
        assert!(validate_perf_report(&refine).is_err());
    }

    #[test]
    fn cross_kind_errors_name_expected_and_found_kinds() {
        // Wrong-validator mistakes must read as "wrong file": the error
        // names the kind the validator wanted AND the kind it found.
        let errors = validate_serve_report(&refine_doc()).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("expected \"serve\"") && e.contains("found \"refine\"")),
            "{errors:?}"
        );
        let errors = validate_refine_report(&perf_doc()).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("expected \"refine\"") && e.contains("found \"perf\"")),
            "{errors:?}"
        );
        // The kindless v1 validator names the found kind too, and points
        // at the right validator.
        let errors = validate_report(&serve_doc()).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("found kind \"serve\"") && e.contains("kindless")),
            "{errors:?}"
        );
        // A kinded validator fed a kindless document says what kindless
        // documents are, instead of a bare rejection.
        let errors = validate_perf_report(&rendered(false)).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("\"perf\"") && e.contains("schema-v1")),
            "{errors:?}"
        );
    }

    #[test]
    fn feasible_without_cost_is_rejected() {
        let text = rendered(false);
        // Break one heuristic row: claim feasibility but null the cost.
        let broken = text.replacen("\"mean_cost\": 1", "\"mean_cost\": null, \"x\": 1", 1);
        if broken != text {
            let errors = validate_report(&broken).unwrap_err();
            assert!(errors.iter().any(|e| e.contains("mean_cost")), "{errors:?}");
        }
    }
}
