//! Structural validation of `BENCH_sweep.json` documents.
//!
//! CI uploads the report as a workflow artifact and fails the build when
//! this check rejects it, so downstream tooling (perf dashboards, diff
//! scripts) can rely on schema v1 without defensive parsing.

use crate::json::{parse, Json};
use crate::sink::SCHEMA_VERSION;

/// Validates a serialized campaign report against schema v1.
///
/// Returns every violation found (empty ⇒ valid); a parse failure is a
/// single violation.
pub fn validate_report(text: &str) -> Result<(), Vec<String>> {
    let doc = match parse(text) {
        Ok(doc) => doc,
        Err(e) => return Err(vec![format!("not JSON: {e}")]),
    };
    let mut errors = Vec::new();
    let mut check = |cond: bool, msg: &str| {
        if !cond {
            errors.push(msg.to_string());
        }
    };

    check(
        doc.get("schema_version").and_then(Json::as_int) == Some(SCHEMA_VERSION),
        "schema_version must be the integer 1",
    );
    check(
        doc.get("generator")
            .and_then(Json::as_str)
            .is_some_and(|s| s.starts_with("snsp-sweep")),
        "generator must be an snsp-sweep version string",
    );
    check(
        doc.get("campaign")
            .and_then(Json::as_str)
            .is_some_and(|s| !s.is_empty()),
        "campaign must be a non-empty string",
    );

    let heur_count = doc
        .get("config")
        .and_then(|c| c.get("heuristics"))
        .and_then(Json::as_arr)
        .map(<[Json]>::len);
    let point_count = match doc.get("config") {
        None => {
            errors.push("config object missing".to_string());
            None
        }
        Some(config) => {
            if config.get("seeds").and_then(Json::as_int).unwrap_or(0) < 1 {
                errors.push("config.seeds must be a positive integer".to_string());
            }
            match heur_count {
                None => errors.push("config.heuristics must be an array".to_string()),
                Some(0) => errors.push("config.heuristics must be non-empty".to_string()),
                Some(_) => {}
            }
            match config.get("points").and_then(Json::as_arr) {
                None => {
                    errors.push("config.points must be an array".to_string());
                    None
                }
                Some(points) => {
                    for (i, p) in points.iter().enumerate() {
                        for key in ["label", "shape"] {
                            if p.get(key).and_then(Json::as_str).is_none() {
                                errors.push(format!("config.points[{i}].{key} must be a string"));
                            }
                        }
                        for key in ["n_ops", "n_types", "servers"] {
                            if p.get(key).and_then(Json::as_int).unwrap_or(0) < 1 {
                                errors.push(format!(
                                    "config.points[{i}].{key} must be a positive integer"
                                ));
                            }
                        }
                        for key in ["alpha", "kappa", "freq_hz", "rho"] {
                            if p.get(key).and_then(Json::as_num).is_none() {
                                errors.push(format!("config.points[{i}].{key} must be a number"));
                            }
                        }
                        for key in ["sizes_mb", "replicas"] {
                            if p.get(key).and_then(Json::as_arr).map(<[Json]>::len) != Some(2) {
                                errors
                                    .push(format!("config.points[{i}].{key} must be a pair array"));
                            }
                        }
                    }
                    Some(points.len())
                }
            }
        }
    };

    match doc.get("results").and_then(Json::as_arr) {
        None => errors.push("results must be an array".to_string()),
        Some(results) => {
            if let Some(n) = point_count {
                if results.len() != n {
                    errors.push(format!(
                        "results has {} entries but config.points has {n}",
                        results.len()
                    ));
                }
            }
            for (i, point) in results.iter().enumerate() {
                if point.get("label").and_then(Json::as_str).is_none() {
                    errors.push(format!("results[{i}].label must be a string"));
                }
                match point.get("heuristics").and_then(Json::as_arr) {
                    None => errors.push(format!("results[{i}].heuristics must be an array")),
                    Some(rows) => {
                        if let Some(h) = heur_count {
                            if rows.len() != h {
                                errors.push(format!(
                                    "results[{i}] has {} heuristic rows, expected {h}",
                                    rows.len()
                                ));
                            }
                        }
                        for (j, row) in rows.iter().enumerate() {
                            validate_heur_row(row, i, j, &mut errors);
                        }
                    }
                }
                match point.get("reference") {
                    None => errors.push(format!("results[{i}].reference key missing")),
                    Some(Json::Null) => {}
                    Some(reference) => validate_reference(reference, i, &mut errors),
                }
            }
        }
    }

    if let Some(timing) = doc.get("timing") {
        if timing.get("workers").and_then(Json::as_int).unwrap_or(0) < 1 {
            errors.push("timing.workers must be a positive integer".to_string());
        }
        for key in ["flatten_s", "run_s", "aggregate_s", "total_s"] {
            if !timing
                .get(key)
                .and_then(Json::as_num)
                .is_some_and(|v| v >= 0.0)
            {
                errors.push(format!("timing.{key} must be a non-negative number"));
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn validate_heur_row(row: &Json, i: usize, j: usize, errors: &mut Vec<String>) {
    let at = format!("results[{i}].heuristics[{j}]");
    if row.get("name").and_then(Json::as_str).is_none() {
        errors.push(format!("{at}.name must be a string"));
    }
    let runs = row.get("runs").and_then(Json::as_int);
    let feasible = row.get("feasible").and_then(Json::as_int);
    match (runs, feasible) {
        (Some(r), Some(f)) if (0..=r).contains(&f) => {
            let has_cost = !matches!(row.get("mean_cost"), Some(Json::Null) | None);
            if has_cost != (f > 0) {
                errors.push(format!("{at}.mean_cost must be present iff feasible > 0"));
            }
        }
        _ => errors.push(format!("{at} needs integer runs >= feasible >= 0")),
    }
    if !row
        .get("feasibility_pct")
        .and_then(Json::as_num)
        .is_some_and(|v| (0.0..=100.0).contains(&v))
    {
        errors.push(format!("{at}.feasibility_pct must be in [0, 100]"));
    }
    for key in ["mean_cost", "mean_procs"] {
        match row.get(key) {
            Some(Json::Null) | Some(Json::Num(_)) | Some(Json::Int(_)) => {}
            _ => errors.push(format!("{at}.{key} must be a number or null")),
        }
    }
}

fn validate_reference(reference: &Json, i: usize, errors: &mut Vec<String>) {
    let at = format!("results[{i}].reference");
    let runs = reference.get("runs").and_then(Json::as_int);
    let solved = reference.get("solved").and_then(Json::as_int);
    if !matches!((runs, solved), (Some(r), Some(s)) if (0..=r).contains(&s)) {
        errors.push(format!("{at} needs integer runs >= solved >= 0"));
    }
    if reference.get("optimal").and_then(Json::as_bool).is_none() {
        errors.push(format!("{at}.optimal must be a boolean"));
    }
    match reference.get("mean_cost") {
        Some(Json::Null) | Some(Json::Num(_)) | Some(Json::Int(_)) => {}
        _ => errors.push(format!("{at}.mean_cost must be a number or null")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, Campaign, PointSpec, ReferenceConfig};
    use snsp_gen::ScenarioParams;

    fn rendered(include_timing: bool) -> String {
        let campaign = Campaign::new(
            "schema-test",
            vec![
                PointSpec::new("8", ScenarioParams::paper(8, 0.9)),
                PointSpec::new("12", ScenarioParams::paper(12, 1.3)),
            ],
            2,
        )
        .with_reference(ReferenceConfig {
            max_ops: 10,
            node_budget: 100_000,
        })
        .with_workers(2);
        run_campaign(&campaign).render_json(include_timing)
    }

    #[test]
    fn real_reports_validate() {
        validate_report(&rendered(true)).expect("timed report validates");
        validate_report(&rendered(false)).expect("stable report validates");
    }

    #[test]
    fn non_json_is_one_violation() {
        let errors = validate_report("{oops").unwrap_err();
        assert_eq!(errors.len(), 1);
        assert!(errors[0].starts_with("not JSON"));
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let text = rendered(false).replace("\"schema_version\": 1", "\"schema_version\": 2");
        let errors = validate_report(&text).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("schema_version")));
    }

    #[test]
    fn missing_results_is_rejected() {
        let text = "{\"schema_version\": 1, \"generator\": \"snsp-sweep 0\", \
                    \"campaign\": \"x\"}";
        let errors = validate_report(text).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("config")));
        assert!(errors.iter().any(|e| e.contains("results")));
    }

    #[test]
    fn feasible_without_cost_is_rejected() {
        let text = rendered(false);
        // Break one heuristic row: claim feasibility but null the cost.
        let broken = text.replacen("\"mean_cost\": 1", "\"mean_cost\": null, \"x\": 1", 1);
        if broken != text {
            let errors = validate_report(&broken).unwrap_err();
            assert!(errors.iter().any(|e| e.contains("mean_cost")), "{errors:?}");
        }
    }
}
