//! A work-stealing job pool over `std::thread::scope`.
//!
//! Jobs are the integers `0..n_jobs`. Each worker owns a contiguous range
//! of unclaimed indices; it pops from the front of its own range and, when
//! empty, steals the back half of the richest remaining range. Because
//! every job writes only its own result slot and jobs are pure functions
//! of their index, the collected output is identical for every worker
//! count and every interleaving.

use std::sync::Mutex;

/// A contiguous range `[lo, hi)` of unclaimed job indices.
#[derive(Debug, Clone, Copy)]
struct Span {
    lo: usize,
    hi: usize,
}

impl Span {
    fn len(&self) -> usize {
        self.hi - self.lo
    }
}

/// Runs `job(i)` for every `i in 0..n_jobs` on `workers` threads and
/// returns the results in index order.
///
/// `workers` is clamped to `[1, n_jobs]`; with one worker the jobs run on
/// the calling thread in index order, giving a true serial baseline.
pub fn run_jobs<T, F>(n_jobs: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n_jobs == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n_jobs);
    if workers == 1 {
        return (0..n_jobs).map(job).collect();
    }

    // Initial even split of `0..n_jobs` into one span per worker.
    let queues: Vec<Mutex<Span>> = (0..workers)
        .map(|w| {
            let lo = w * n_jobs / workers;
            let hi = (w + 1) * n_jobs / workers;
            Mutex::new(Span { lo, hi })
        })
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let job = &job;
            scope.spawn(move || loop {
                // Pop from the front of our own span.
                let mine = {
                    let mut span = queues[w].lock().unwrap();
                    if span.lo < span.hi {
                        let i = span.lo;
                        span.lo += 1;
                        Some(i)
                    } else {
                        None
                    }
                };
                if let Some(i) = mine {
                    *slots[i].lock().unwrap() = Some(job(i));
                    continue;
                }
                // Steal the back half of the richest victim. Only one lock
                // is held at a time, so there is no ordering to deadlock on.
                let victim = (0..workers)
                    .filter(|&v| v != w)
                    .map(|v| (v, queues[v].lock().unwrap().len()))
                    .max_by_key(|&(_, len)| len)
                    .filter(|&(_, len)| len > 0)
                    .map(|(v, _)| v);
                let Some(v) = victim else {
                    break; // every span is empty — all jobs are claimed
                };
                let stolen = {
                    let mut span = queues[v].lock().unwrap();
                    let take = span.len().div_ceil(2);
                    if take == 0 {
                        None // raced: the victim drained it first
                    } else {
                        let lo = span.hi - take;
                        let hi = span.hi;
                        span.hi = lo;
                        Some(Span { lo, hi })
                    }
                };
                if let Some(s) = stolen {
                    *queues[w].lock().unwrap() = s;
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every job index was claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_jobs_run_exactly_once() {
        for workers in [1, 2, 3, 8, 64] {
            let calls = AtomicUsize::new(0);
            let out = run_jobs(37, workers, |i| {
                calls.fetch_add(1, Ordering::Relaxed);
                i * i
            });
            assert_eq!(calls.load(Ordering::Relaxed), 37);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<u32> = run_jobs(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let out = run_jobs(3, 16, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn output_order_is_independent_of_worker_count() {
        let serial = run_jobs(101, 1, |i| i as u64 * 7919);
        for workers in [2, 5, 12] {
            assert_eq!(run_jobs(101, workers, |i| i as u64 * 7919), serial);
        }
    }

    #[test]
    fn uneven_job_durations_still_complete() {
        // Front-loaded long jobs force the later workers to steal.
        let out = run_jobs(24, 4, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            i
        });
        assert_eq!(out, (0..24).collect::<Vec<_>>());
    }
}
