//! Minimal, dependency-free drop-in for the subset of `rand_chacha` the
//! snsp workspace may use: seedable, reproducible [`ChaCha8Rng`] /
//! [`ChaCha20Rng`] implementing the vendored `rand::RngCore`.
//!
//! This is a real ChaCha keystream generator (RFC 8439 quarter-round),
//! which keeps the crate honest as a *deterministic stream* source; it is
//! NOT hardened or audited — test/experiment use only.

use rand::{Error, RngCore, SeedableRng};

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr) => {
        /// Deterministic ChaCha keystream generator.
        #[derive(Clone, Debug)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            stream: u64,
            buf: [u32; 16],
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
                let mut x = [0u32; 16];
                x[..4].copy_from_slice(&SIGMA);
                x[4..12].copy_from_slice(&self.key);
                x[12] = self.counter as u32;
                x[13] = (self.counter >> 32) as u32;
                x[14] = self.stream as u32;
                x[15] = (self.stream >> 32) as u32;
                let input = x;
                for _ in 0..($rounds / 2) {
                    quarter(&mut x, 0, 4, 8, 12);
                    quarter(&mut x, 1, 5, 9, 13);
                    quarter(&mut x, 2, 6, 10, 14);
                    quarter(&mut x, 3, 7, 11, 15);
                    quarter(&mut x, 0, 5, 10, 15);
                    quarter(&mut x, 1, 6, 11, 12);
                    quarter(&mut x, 2, 7, 8, 13);
                    quarter(&mut x, 3, 4, 9, 14);
                }
                for (o, i) in x.iter_mut().zip(input.iter()) {
                    *o = o.wrapping_add(*i);
                }
                self.buf = x;
                self.index = 0;
                self.counter = self.counter.wrapping_add(1);
            }

            /// Selects an independent stream (nonce), as in `rand_chacha`.
            pub fn set_stream(&mut self, stream: u64) {
                self.stream = stream;
                self.index = 16;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (i, word) in key.iter_mut().enumerate() {
                    let mut b = [0u8; 4];
                    b.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
                    *word = u32::from_le_bytes(b);
                }
                $name {
                    key,
                    counter: 0,
                    stream: 0,
                    buf: [0; 16],
                    index: 16,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let w = self.buf[self.index];
                self.index += 1;
                w
            }
            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(4) {
                    let b = self.next_u32().to_le_bytes();
                    chunk.copy_from_slice(&b[..chunk.len()]);
                }
            }
            fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
                self.fill_bytes(dest);
                Ok(())
            }
        }
    };
}

fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

chacha_rng!(ChaCha8Rng, 8);
chacha_rng!(ChaCha12Rng, 12);
chacha_rng!(ChaCha20Rng, 20);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_block_one() {
        // RFC 8439 §2.3.2 test vector: key 00..1f, counter 1,
        // nonce 00000009_0000004a_00000000. Our layout splits the 96-bit
        // nonce differently (64-bit stream), so check the keystream is at
        // least deterministic and seed-sensitive instead.
        let mut a = ChaCha20Rng::seed_from_u64(1);
        let mut b = ChaCha20Rng::seed_from_u64(1);
        let mut c = ChaCha20Rng::seed_from_u64(2);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        b.set_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
