//! Minimal, dependency-free drop-in for the subset of `rand` 0.8 that the
//! snsp workspace uses. The build environment has no crates.io access, so
//! the workspace vendors the APIs it needs: [`RngCore`], [`SeedableRng`],
//! [`Rng::gen_range`], [`rngs::StdRng`] and [`seq::SliceRandom`].
//!
//! `StdRng` is xoshiro256++ seeded via SplitMix64 (the same seeding scheme
//! `rand_core` uses for `seed_from_u64`), so streams are deterministic
//! per seed — which is all the tests and experiments rely on.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by the
/// generators in this stub, but part of the `RngCore` signature).
pub struct Error;

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rand::Error")
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RNG error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, matching `rand_core::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Seeds via SplitMix64, like `rand_core`: deterministic and
    /// well-distributed even for small consecutive seed values.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    fn from_rng<R: RngCore>(mut rng: R) -> Result<Self, Error> {
        let mut seed = Self::Seed::default();
        rng.try_fill_bytes(seed.as_mut())?;
        Ok(Self::from_seed(seed))
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Go through i128 so spans wider than the type's positive
                // half (e.g. i32::MIN..i32::MAX) neither overflow nor wrap.
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                let off = (rng.next_u64() as u128) % span;
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as i128) - (lo as i128)) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start + (unit as $t) * (self.end - self.start);
                // `start + unit*(end-start)` can round up to `end`; keep
                // the half-open contract by stepping below it.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v.max(self.start)
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // Closed interval: include the top by widening half an ulp
                // worth of unit interval (hi itself is reachable). Rounding
                // in `lo + unit*(hi-lo)` can overshoot either edge; clamp.
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (lo + (unit as $t) * (hi - lo)).clamp(lo, hi)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (including trait objects, as in `&mut dyn RngCore`).
pub trait Rng: RngCore {
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Not cryptographically secure — test/experiment use only.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (RngCore::next_u64(rng) % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (RngCore::next_u64(rng) % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_handles_spans_wider_than_the_positive_half() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(-2_000_000_000i32..2_000_000_000);
            assert!((-2_000_000_000..2_000_000_000).contains(&x));
            let y = rng.gen_range(i64::MIN..i64::MAX);
            assert!(y < i64::MAX);
            let z = rng.gen_range(0u64..=u64::MAX);
            let _ = z; // full-width span: any value is in range
        }
    }

    #[test]
    fn float_gen_range_never_escapes_the_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5000 {
            // hi - lo rounds up past the true span here; the clamp must
            // keep results inside the closed interval.
            let v = rng.gen_range(-0.1f64..=0.3);
            assert!((-0.1..=0.3).contains(&v), "escaped closed range: {v}");
            // ulp(start) == span: naive arithmetic rounds to `end`.
            let w = rng.gen_range(1.0e16f64..1.0e16 + 2.0);
            assert!(w < 1.0e16 + 2.0, "escaped half-open range: {w}");
        }
    }

    #[test]
    fn works_through_trait_objects() {
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0u64..10);
        assert!(x < 10);
        let mut v: Vec<u32> = (0..10).collect();
        v.shuffle(dyn_rng);
        assert_eq!(v.len(), 10);
        assert!(v.choose(dyn_rng).is_some());
    }
}
