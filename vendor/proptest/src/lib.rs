//! Minimal offline drop-in for the subset of `proptest` 1.x that the snsp
//! workspace uses: the [`proptest!`] macro over `ident in strategy`
//! arguments, range and [`collection::vec`] strategies, `prop_assert*`,
//! `prop_assume!` and a [`test_runner::ProptestConfig`] with a bounded
//! case count.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs but is not
//!   minimised;
//! * sampling is plain uniform, seeded deterministically per test name,
//!   so failures are reproducible run-over-run;
//! * `PROPTEST_CASES` in the environment overrides the configured case
//!   count (same knob real proptest honours).

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A value generator. Unlike real proptest there is no value tree:
    /// `sample` draws one concrete value.
    pub trait Strategy {
        type Value: std::fmt::Debug;

        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Strategy producing a constant value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`crate::collection::vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// `vec(element, size)`: a `Vec` whose length is drawn from `size`
    /// and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// A `prop_assert*` failed: the property is violated.
        Fail(String),
        /// A `prop_assume!` rejected the inputs: draw again.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Runner configuration. Only `cases` is interpreted; the other
    /// fields exist so `..ProptestConfig::default()` updates from real
    /// proptest code keep compiling.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Global cap on `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// `ProptestConfig::with_cases(n)`, as in real proptest.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }

        /// Effective case count: `PROPTEST_CASES` wins when set.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    /// Deterministic per-test seed: SipHash-1-3 of the test path with the
    /// fixed std keys, so a failure reproduces on re-run.
    pub fn seed_for(test_name: &str) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        test_name.hash(&mut h);
        h.finish()
    }
}

/// Defines property tests: `fn name(arg in strategy, ...) { body }`.
///
/// The body runs once per generated case; `prop_assert*` failures panic
/// with the offending inputs, `prop_assume!` rejections redraw.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __cases = __config.effective_cases();
                let mut __rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                    $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                let mut __passed: u32 = 0;
                let mut __rejected: u32 = 0;
                while __passed < __cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(__why),
                        ) => {
                            __rejected += 1;
                            if __rejected > __config.max_global_rejects {
                                panic!(
                                    "proptest {}: too many prop_assume! rejections (last: {})",
                                    stringify!($name), __why,
                                );
                            }
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__why),
                        ) => {
                            panic!(
                                "proptest {} failed after {} passing case(s)\n  inputs: {}\n  {}",
                                stringify!($name), __passed, __inputs, __why,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Rejects the current case (the runner draws a fresh one).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_size(v in collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for &x in &v {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn assume_redraws(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
