//! Minimal offline drop-in for the subset of `criterion` 0.5 that the snsp
//! benches use: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with `sample_size` / `warm_up_time` / `measurement_time` /
//! `bench_with_input`, [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros (bench targets use
//! `harness = false`).
//!
//! It is a *timer*, not a statistics engine: each benchmark warms up once,
//! then runs until `sample_size` iterations or `measurement_time` elapse
//! (whichever first) and reports the mean wall-clock time per iteration.
//! Good enough to keep bench code compiling and runnable in CI; use real
//! criterion for publication-quality numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark point: a function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the measured closure; `iter` times the routine.
pub struct Bencher<'a> {
    config: &'a GroupConfig,
    label: String,
}

impl Bencher<'_> {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call (also forces lazy init).
        black_box(routine());
        let start = Instant::now();
        let mut iters: u32 = 0;
        while iters < self.config.sample_size.max(1) as u32 {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.config.measurement_time && iters > 0 {
                break;
            }
        }
        let per_iter = start.elapsed().as_nanos() / u128::from(iters.max(1));
        println!(
            "bench: {:<48} {:>12} ns/iter ({} iters)",
            self.label, per_iter, iters
        );
    }
}

#[derive(Clone, Debug)]
struct GroupConfig {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// A named collection of related benchmark points.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: GroupConfig,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.config.measurement_time = dur;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher {
            config: &self.config,
            label: format!("{}/{}", self.name, id),
        };
        f(&mut b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut b = Bencher {
            config: &self.config,
            label: format!("{}/{}", self.name, id),
        };
        f(&mut b, input);
        self
    }

    pub fn finish(self) {}
}

/// Entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    config: GroupConfig,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.config.clone();
        BenchmarkGroup {
            name: name.into(),
            config,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher {
            config: &self.config,
            label: id.to_string(),
        };
        f(&mut b);
        self
    }
}

/// Collects benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // libtest-style flags arrive from `cargo bench`/`cargo test`;
            // `--list` must print nothing and exit 0 for test discovery.
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_pipeline_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(1));
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &n| {
            b.iter(|| {
                calls += 1;
                n * 2
            })
        });
        group.finish();
        assert!(calls >= 1);

        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }
}
