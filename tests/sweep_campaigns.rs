//! Integration coverage for the `snsp-sweep` campaign subsystem through
//! the facade: scheduling-independent determinism, the exact-solver
//! reference column, and schema-v1 round-tripping.

use snsp::prelude::*;
use snsp::sweep::Json;

fn demo_campaign(workers: usize) -> Campaign {
    let points = vec![
        PointSpec::new("8", ScenarioParams::paper(8, 0.9)),
        PointSpec::new("12", ScenarioParams::paper(12, 1.3)),
        PointSpec::new("16", ScenarioParams::paper(16, 0.9)),
    ];
    Campaign::new("integration", points, 3)
        .with_reference(ReferenceConfig {
            max_ops: 12,
            node_budget: 200_000,
            workers: 1,
        })
        .with_workers(workers)
}

/// The tentpole determinism guarantee: the stable JSON (timing omitted)
/// is byte-identical at every worker count, reference column included.
#[test]
fn stable_json_is_byte_identical_across_worker_counts() {
    let serial = run_campaign(&demo_campaign(1)).render_json(false);
    for workers in [2, 4, 7] {
        let parallel = run_campaign(&demo_campaign(workers)).render_json(false);
        assert_eq!(serial, parallel, "diverged at {workers} workers");
    }
    // The serial baseline itself must be reproducible.
    assert_eq!(serial, run_campaign(&demo_campaign(1)).render_json(false));
}

/// Campaign results must agree with running the pipeline by hand on the
/// same instances and derived seeds.
#[test]
fn campaign_outcomes_match_manual_pipeline_runs() {
    let report = run_campaign(&demo_campaign(4));
    let point = &report.points[0]; // N = 8, alpha = 0.9
    for (h, heur) in all_heuristics().iter().enumerate() {
        let mut manual: Vec<u64> = Vec::new();
        for seed in 0..3u64 {
            let inst = snsp::gen::generate(&ScenarioParams::paper(8, 0.9), TreeShape::Random, seed);
            let rng_seed = seed.wrapping_mul(snsp::sweep::PIPELINE_SEED_STRIDE);
            if let Ok(sol) =
                solve_seeded(heur.as_ref(), &inst, rng_seed, &PipelineOptions::default())
            {
                manual.push(sol.cost);
            }
        }
        let stats = &point.heuristics[h];
        assert_eq!(stats.name, heur.name());
        assert_eq!(stats.feasible, manual.len());
        if !manual.is_empty() {
            let mean = manual.iter().sum::<u64>() as f64 / manual.len() as f64;
            assert!((stats.mean_cost.unwrap() - mean).abs() < 1e-9);
        }
    }
}

/// A truncated branch-and-bound (node budget exhausted) must surface as
/// `optimal = false` in the reference column, in both the typed report
/// and the serialized JSON.
#[test]
fn truncated_reference_is_reported_as_not_optimal() {
    let points = vec![PointSpec::new("16", ScenarioParams::paper(16, 0.9))];
    let campaign = Campaign::new("truncated", points, 2)
        .with_reference(ReferenceConfig {
            max_ops: 16,
            node_budget: 1,
            workers: 1,
        })
        .with_workers(2);
    let report = run_campaign(&campaign);
    let reference = report.points[0].reference.as_ref().expect("eligible point");
    assert!(!reference.optimal);

    let json = report.render_json(false);
    let doc = snsp::sweep::json::parse(&json).unwrap();
    let results = doc.get("results").unwrap().as_arr().unwrap();
    let optimal = results[0]
        .get("reference")
        .unwrap()
        .get("optimal")
        .unwrap()
        .as_bool();
    assert_eq!(optimal, Some(false));
}

/// An ample budget on tiny instances proves optimality, and the exact
/// cost never exceeds any heuristic mean on fully-feasible rows.
#[test]
fn exhaustive_reference_is_optimal_and_bounds_heuristics() {
    let points = vec![PointSpec::new("8", ScenarioParams::paper(8, 0.9))];
    let campaign = Campaign::new("opt", points, 2)
        .with_reference(ReferenceConfig {
            max_ops: 8,
            node_budget: 2_000_000,
            workers: 1,
        })
        .with_workers(2);
    let report = run_campaign(&campaign);
    let point = &report.points[0];
    let reference = point.reference.as_ref().unwrap();
    assert!(reference.optimal);
    assert_eq!(reference.solved, 2);
    let exact = reference.mean_cost.unwrap();
    for h in &point.heuristics {
        if h.feasible == h.runs {
            assert!(
                h.mean_cost.unwrap() >= exact - 1e-9,
                "{} beat the optimum",
                h.name
            );
        }
    }
}

/// Timed reports validate, corrupted ones do not.
#[test]
fn schema_validation_round_trips() {
    let report = run_campaign(&demo_campaign(2));
    let timed = report.render_json(true);
    assert!(timed.contains("\"timing\""));
    validate_report(&timed).expect("timed report is schema-valid");
    validate_report(&report.render_json(false)).expect("stable report is schema-valid");

    let truncated = &timed[..timed.len() / 2];
    assert!(validate_report(truncated).is_err());
    let wrong_version = timed.replace("\"schema_version\": 1", "\"schema_version\": 99");
    assert!(validate_report(&wrong_version).is_err());
}

/// The report exposes enough typed data to rebuild the paper's tables:
/// labels in grid order, all six heuristics, runs bookkeeping intact.
#[test]
fn report_is_table_ready() {
    let report = run_campaign(&demo_campaign(3));
    assert_eq!(report.campaign, "integration");
    assert_eq!(report.seeds, 3);
    let labels: Vec<&str> = report.points.iter().map(|p| p.label.as_str()).collect();
    assert_eq!(labels, ["8", "12", "16"]);
    for point in &report.points {
        assert_eq!(point.heuristics.len(), 6);
        for h in &point.heuristics {
            assert_eq!(h.runs, 3);
            assert!(h.feasible <= h.runs);
            assert_eq!(h.mean_cost.is_some(), h.feasible > 0);
        }
    }
    // Reference only on the N ≤ 12 points.
    assert!(report.points[0].reference.is_some());
    assert!(report.points[1].reference.is_some());
    assert!(report.points[2].reference.is_none());
}

/// `Json` is re-exported for downstream tooling; spot-check the parser
/// agrees with the writer on a report.
#[test]
fn report_json_parses_back() {
    let report = run_campaign(&demo_campaign(2));
    let doc = snsp::sweep::json::parse(&report.render_json(true)).unwrap();
    assert_eq!(
        doc.get("campaign").and_then(Json::as_str),
        Some("integration")
    );
    assert_eq!(doc.get("schema_version").and_then(Json::as_int), Some(1));
    let timing = doc.get("timing").expect("timed render keeps timing");
    assert!(timing.get("workers").and_then(Json::as_int).unwrap() >= 1);
}
