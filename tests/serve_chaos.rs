//! Integration tests for the fault-injection tier: seeded chaos replay
//! over the sharded platform must (a) degenerate to the plain sharded
//! tier when the fault plan is empty, (b) recover every injected shard
//! crash fingerprint-identically to an uninterrupted run at any worker
//! count, (c) re-admit at least 90% of the tenants displaced by a
//! capacity revocation once it thaws, (d) draw its fault schedule
//! independently of the shard count, and (e) keep the platform
//! invariant audit clean after every fault.

use snsp::prelude::*;

fn churny_params() -> TraceParams {
    TraceParams::poisson(0.7, 5.0, 25.0).with_failures(0.1)
}

/// An all-off fault spec instantiates to an empty plan and the chaos
/// replay collapses to the plain sharded tier: same log, same costs,
/// same final platform fingerprint, zeroed chaos stats.
#[test]
fn empty_fault_plan_reproduces_the_sharded_tier() {
    let trace = generate_trace(&churny_params(), 17);
    let plan = FaultPlan::instantiate(&FaultSpec::default(), trace.params.horizon);
    assert!(plan.events.is_empty());
    for shards in [1usize, 2, 4] {
        let opts = ShardOptions { shards, workers: 2 };
        let (plain, plain_state) = replay_trace_sharded(&trace, &ServeConfig::default(), &opts);
        let (chaos, chaos_state) =
            replay_trace_chaos(&trace, &ServeConfig::default(), &opts, &plan);
        assert_eq!(plain.log, chaos.base.log, "{shards} shards");
        assert_eq!(plain.final_cost, chaos.base.final_cost, "{shards} shards");
        assert_eq!(
            plain.cost_time_integral, chaos.base.cost_time_integral,
            "{shards} shards"
        );
        assert_eq!(plain_state.fingerprint(), chaos_state.fingerprint());
        assert_eq!(chaos.stats, Default::default());
    }
}

/// The headline recovery guarantee: every injected crash restores the
/// victim shard from its tick-barrier checkpoint and replays forward to
/// a state byte-identical to the run that never crashed — event log,
/// final cost, and platform fingerprint all match at 1, 2 and 4 replay
/// workers, and the invariant audit stays clean throughout.
#[test]
fn crash_recovery_matches_the_uninterrupted_run_at_every_worker_count() {
    let trace = generate_trace(&churny_params(), 29);
    let spec = FaultSpec::seeded(43)
        .with_crashes(0.3)
        .with_msg_faults(0.1, 0.05, 0.05)
        .with_retry(RetryPolicy::standard())
        .with_ticks(2.0);
    let plan = FaultPlan::instantiate(&spec, trace.params.horizon);
    assert!(plan.crash_count() >= 2, "plan must schedule real crashes");
    let reference = plan.without_crashes();
    for workers in [1usize, 2, 4] {
        let opts = ShardOptions { shards: 2, workers };
        let (chaos, state) = replay_trace_chaos(&trace, &ServeConfig::default(), &opts, &plan);
        let (clean, clean_state) =
            replay_trace_chaos(&trace, &ServeConfig::default(), &opts, &reference);
        assert_eq!(chaos.stats.crashes, plan.crash_count(), "{workers} workers");
        assert_eq!(
            chaos.stats.recoveries, chaos.stats.crashes,
            "{workers} workers"
        );
        assert_eq!(
            chaos.base.log, clean.base.log,
            "{workers} workers: recovery must be unobservable in the log"
        );
        assert_eq!(
            chaos.base.final_cost, clean.base.final_cost,
            "{workers} workers"
        );
        assert_eq!(
            state.fingerprint(),
            clean_state.fingerprint(),
            "{workers} workers: recovered state diverged"
        );
        assert_eq!(
            chaos.stats.audit_failures, 0,
            "{workers} workers: {:?}",
            chaos.stats.audit_first
        );
        audit_platform(&state).expect("final platform passes the invariant audit");
    }
}

/// A mid-trace capacity revocation displaces tenants (purchases frozen,
/// live processors killed); the bounded retry queue re-admits at least
/// 90% of them under deterministic exponential backoff once capacity is
/// restored.
#[test]
fn revocation_displaces_then_retry_readmits_ninety_percent() {
    let params = TraceParams::poisson(1.2, 50.0, 30.0)
        .with_tenant_ops(12, 20)
        .with_tenant_rho(8.0, 16.0);
    let trace = generate_trace(&params, 2);
    let spec = FaultSpec::seeded(21)
        .with_revocation(10.0, 14.0, 0.6)
        .with_retry(RetryPolicy::standard())
        .with_ticks(1.0);
    let plan = FaultPlan::instantiate(&spec, params.horizon);
    let opts = ShardOptions {
        shards: 2,
        workers: 2,
    };
    let (report, state) = replay_trace_chaos(&trace, &ServeConfig::default(), &opts, &plan);
    assert_eq!(report.stats.revocations, 1);
    assert!(
        report.stats.retry_enqueued > 0,
        "the revocation must displace tenants"
    );
    assert!(
        report.readmission_rate() >= 0.9,
        "readmission {:.2} below the 90% bar ({} of {})",
        report.readmission_rate(),
        report.stats.readmitted,
        report.stats.retry_enqueued
    );
    assert!(
        report.base.log.iter().any(|l| l.contains(" readmit ")),
        "readmissions must appear in the event log"
    );
    assert_eq!(
        report.stats.audit_failures, 0,
        "{:?}",
        report.stats.audit_first
    );
    audit_platform(&state).expect("final platform passes the invariant audit");
}

/// The fault lottery is drawn globally and only then routed: the
/// schedule (times, kinds, victim draws) is identical at any shard
/// count, so the same crashes and revocations land at 1, 2 and 4
/// shards.
#[test]
fn fault_schedule_does_not_depend_on_the_shard_count() {
    let spec = FaultSpec::seeded(77)
        .with_crashes(0.25)
        .with_racks(0.1, 2)
        .with_revocation(5.0, 9.0, 0.3)
        .with_ticks(2.0);
    let trace = generate_trace(&TraceParams::poisson(0.7, 5.0, 20.0), 12);
    let plan = FaultPlan::instantiate(&spec, trace.params.horizon);
    let mut schedules = Vec::new();
    for shards in [1usize, 2, 4] {
        let opts = ShardOptions { shards, workers: 2 };
        let report = run_trace_chaos(&trace, &ServeConfig::default(), &opts, &plan);
        schedules.push((
            report.stats.crashes,
            report.stats.rack_failures,
            report.stats.revocations,
            report.stats.faults_injected,
        ));
        assert_eq!(report.stats.audit_failures, 0, "{shards} shards");
    }
    assert_eq!(schedules[0], schedules[1], "1 vs 2 shards");
    assert_eq!(schedules[0], schedules[2], "1 vs 4 shards");
}

/// A chaos campaign's stable JSON is byte-identical at any campaign
/// worker count, validates against schema v6, and certifies every
/// crashing point against its crash-free reference replay.
#[test]
fn chaos_campaign_stable_json_is_worker_count_independent_and_certified() {
    let make = |workers: usize| {
        let points = vec![
            ChaosPoint::new(
                "calm",
                TraceParams::poisson(0.4, 4.0, 15.0),
                FaultSpec::seeded(1).with_ticks(3.0),
            ),
            ChaosPoint::new(
                "stormy",
                TraceParams::poisson(0.5, 4.0, 15.0).with_failures(0.05),
                FaultSpec::seeded(2)
                    .with_crashes(0.25)
                    .with_msg_faults(0.1, 0.05, 0.05)
                    .with_retry(RetryPolicy::standard())
                    .with_ticks(2.0),
            ),
        ];
        ChaosCampaign::new("integration-chaos", points, 2)
            .with_workers(workers)
            .with_shards(2, 2)
    };
    let serial = run_chaos_campaign(&make(1));
    let stable = serial.render_json(false);
    validate_chaos_report(&stable).expect("stable form validates as schema v6");
    let stormy = &serial.points[1];
    assert!(stormy.stats.crashes > 0, "the stormy point must crash");
    assert_eq!(
        stormy.crash_fingerprint_match,
        Some(true),
        "crash recovery must be certified against the uninterrupted reference"
    );
    for p in &serial.points {
        assert_eq!(p.admitted + p.rejected, p.arrivals, "{}", p.label);
        assert_eq!(p.stats.audit_failures, 0, "{}", p.label);
    }
    for workers in [2usize, 4] {
        let parallel = run_chaos_campaign(&make(workers));
        assert_eq!(
            stable,
            parallel.render_json(false),
            "{workers} campaign workers diverged"
        );
    }
}
