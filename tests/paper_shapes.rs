//! Qualitative reproduction checks: the *shapes* the paper reports must
//! hold (who wins, where the thresholds sit), even though absolute dollar
//! values differ from the 2008 testbed (see EXPERIMENTS.md).

use rand::rngs::StdRng;
use rand::SeedableRng;
use snsp::prelude::*;

fn mean_cost(h: &dyn Heuristic, n: usize, alpha: f64, seeds: u64) -> Option<f64> {
    let mut costs = Vec::new();
    for seed in 0..seeds {
        let inst = paper_instance(n, alpha, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Ok(sol) = solve(h, &inst, &mut rng, &PipelineOptions::default()) {
            costs.push(sol.cost as f64);
        }
    }
    (!costs.is_empty()).then(|| costs.iter().sum::<f64>() / costs.len() as f64)
}

#[test]
fn random_is_the_worst_heuristic() {
    // Paper §5: "all our more sophisticated heuristics perform better than
    // the simple random approach".
    for &(n, alpha) in &[(20usize, 0.9), (60, 0.9), (40, 1.5)] {
        let random = mean_cost(&Random, n, alpha, 3).unwrap();
        for h in all_heuristics() {
            if h.name() == "Random" {
                continue;
            }
            if let Some(cost) = mean_cost(h.as_ref(), n, alpha, 3) {
                assert!(
                    cost <= random,
                    "{} (${cost}) worse than Random (${random}) at N={n} α={alpha}",
                    h.name()
                );
            }
        }
    }
}

#[test]
fn random_cost_grows_linearly_with_n() {
    // Random buys ~one processor per operator, so its cost must scale with
    // the tree size (the dominant visual feature of Fig. 2).
    let small = mean_cost(&Random, 20, 0.9, 3).unwrap();
    let large = mean_cost(&Random, 100, 0.9, 3).unwrap();
    assert!(large > 3.0 * small, "small {small}, large {large}");
}

#[test]
fn alpha_has_no_influence_below_the_first_threshold() {
    // Fig. 3: "Up to a threshold, the α parameter has no influence".
    for h in all_heuristics() {
        let lo = mean_cost(h.as_ref(), 60, 0.6, 3);
        let hi = mean_cost(h.as_ref(), 60, 1.2, 3);
        assert_eq!(
            lo.map(|c| c.round() as u64),
            hi.map(|c| c.round() as u64),
            "{} changed below the threshold",
            h.name()
        );
    }
}

#[test]
fn cost_rises_past_the_first_alpha_threshold() {
    // Fig. 3 at N = 60: cost increases somewhere between α ≈ 1.4 and 1.8.
    let flat = mean_cost(&SubtreeBottomUp, 60, 1.0, 3).unwrap();
    let steep = mean_cost(&SubtreeBottomUp, 60, 1.8, 3);
    // None = some seeds already infeasible at 1.8 — also "past it".
    if let Some(c) = steep {
        assert!(c > flat, "no cost increase: {c} vs {flat}");
    }
}

#[test]
fn feasibility_vanishes_past_the_second_alpha_threshold() {
    // Fig. 3 at N = 60: no solutions beyond α ≈ 1.8–1.9 (ours ≈ 1.9).
    for h in all_heuristics() {
        assert!(
            mean_cost(h.as_ref(), 60, 2.1, 3).is_none(),
            "{} still feasible at α=2.1",
            h.name()
        );
    }
    // …while N = 20 survives longer (the threshold moves right for
    // smaller trees — paper: α ≈ 2.2 vs 1.8).
    assert!(mean_cost(&SubtreeBottomUp, 20, 1.9, 3).is_some());
}

#[test]
fn alpha_17_kills_large_trees_only() {
    // Fig. 2(b): at α = 1.7, trees around N ≈ 100+ stop being feasible
    // while N ≤ 60 mostly survives.
    let feasible = |n: usize| {
        (0..4u64)
            .filter(|&seed| {
                let inst = paper_instance(n, 1.7, seed);
                let mut rng = StdRng::seed_from_u64(seed);
                solve(
                    &SubtreeBottomUp,
                    &inst,
                    &mut rng,
                    &PipelineOptions::default(),
                )
                .is_ok()
            })
            .count()
    };
    // The exact wall depends on the RNG stream behind the generated
    // instances (vendored StdRng): feasibility decays from N ≈ 100
    // (2/4 seeds) and vanishes by N = 140.
    assert!(feasible(40) >= 3, "N=40 should be mostly feasible at α=1.7");
    assert!(feasible(140) == 0, "N=140 should be infeasible at α=1.7");
}

#[test]
fn large_objects_hit_a_feasibility_wall() {
    // §5: with 450–530 MB objects "no feasible solution can be found as
    // soon as the trees exceed 45 nodes" (ours: ≈ 35).
    let params = |n| ScenarioParams::paper(n, 0.9).with_sizes(snsp_gen::SizeRange::LARGE);
    let feasible_any = |n: usize| {
        (0..4u64).any(|seed| {
            let inst = snsp_gen::generate(&params(n), TreeShape::Random, seed);
            all_heuristics().iter().any(|h| {
                let mut rng = StdRng::seed_from_u64(seed);
                solve(h.as_ref(), &inst, &mut rng, &PipelineOptions::default()).is_ok()
            })
        })
    };
    assert!(feasible_any(5), "tiny large-object trees must be solvable");
    assert!(
        !feasible_any(60),
        "N=60 with large objects must be infeasible"
    );
}

#[test]
fn low_frequency_only_cheapens_the_network() {
    // §5: low frequencies mostly preserve the mapping but may downgrade
    // the purchased network cards → cost can only go down or stay.
    for seed in 0..3u64 {
        let high = snsp_gen::generate(&ScenarioParams::paper(40, 0.9), TreeShape::Random, seed);
        let low = snsp_gen::generate(
            &ScenarioParams::paper(40, 0.9).with_freq(snsp_gen::Frequency::LOW),
            TreeShape::Random,
            seed,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let h = solve(
            &SubtreeBottomUp,
            &high,
            &mut rng,
            &PipelineOptions::default(),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let l = solve(
            &SubtreeBottomUp,
            &low,
            &mut rng,
            &PipelineOptions::default(),
        );
        if let (Ok(hs), Ok(ls)) = (h, l) {
            assert!(
                ls.cost <= hs.cost,
                "seed {seed}: low-frequency cost {} > high-frequency {}",
                ls.cost,
                hs.cost
            );
        }
    }
}

#[test]
fn frequencies_below_one_tenth_stop_mattering() {
    // §5: "frequencies smaller than 1/10 s have no further influence".
    for seed in 0..3u64 {
        let costs: Vec<Option<u64>> = [0.1, 0.05, 0.02]
            .iter()
            .map(|&f| {
                let inst = snsp_gen::generate(
                    &ScenarioParams::paper(40, 0.9).with_freq(snsp_gen::Frequency(f)),
                    TreeShape::Random,
                    seed,
                );
                let mut rng = StdRng::seed_from_u64(seed);
                solve(
                    &SubtreeBottomUp,
                    &inst,
                    &mut rng,
                    &PipelineOptions::default(),
                )
                .ok()
                .map(|s| s.cost)
            })
            .collect();
        assert_eq!(costs[0], costs[1], "seed {seed}");
        assert_eq!(costs[1], costs[2], "seed {seed}");
    }
}
