//! Smoke coverage for the `examples/` mains: each test replays the
//! example's core library path (trimmed for speed) so an API drift that
//! breaks an example also breaks `cargo test`. CI additionally executes
//! `cargo run --example` for each binary.

use rand::rngs::StdRng;
use rand::SeedableRng;
use snsp::prelude::*;

fn cheapest(inst: &Instance, seed: u64) -> Option<Solution> {
    let mut best: Option<Solution> = None;
    for h in all_heuristics() {
        let mut rng = StdRng::seed_from_u64(seed);
        if let Ok(sol) = solve(h.as_ref(), inst, &mut rng, &PipelineOptions::default()) {
            if best.as_ref().is_none_or(|b| sol.cost < b.cost) {
                best = Some(sol);
            }
        }
    }
    best
}

/// `examples/quickstart.rs`: hand-built three-operator tree, replicated
/// objects, solve + verify + simulate + exact optimum.
#[test]
fn quickstart_core_path() {
    let mut objects = ObjectCatalog::new();
    let frame = objects.add(ObjectType::new(10.0, 0.5));
    let reference = objects.add(ObjectType::new(25.0, 0.5));

    let mut b = OperatorTree::builder();
    let combine = b.add_root();
    let filter = b.add_child(combine).unwrap();
    let matcher = b.add_child(combine).unwrap();
    b.add_leaf(filter, frame).unwrap();
    b.add_leaf(filter, frame).unwrap();
    b.add_leaf(matcher, reference).unwrap();
    b.add_leaf(matcher, frame).unwrap();
    let mut tree = b.finish().unwrap();
    tree.apply_work_model(&objects, &WorkModel::paper(1.2));

    let mut platform = Platform::paper(2);
    platform.placement.add_holder(frame, ServerId(0));
    platform.placement.add_holder(frame, ServerId(3));
    platform.placement.add_holder(reference, ServerId(1));

    let inst = Instance::new(tree, objects, platform, 1.0).expect("valid instance");
    let best = cheapest(&inst, 0).expect("at least one heuristic succeeds");

    assert!(is_feasible(&inst, &best.mapping));
    let described = snsp::core::report::describe(&inst, &best.mapping);
    assert!(!described.is_empty());

    let sim = simulate(&inst, &best.mapping, &SimConfig::default()).unwrap();
    assert!(sim.achieved_throughput >= inst.rho * 0.95);

    let exact = solve_exact(&inst, &BranchBoundConfig::default());
    assert!(exact.cost <= best.cost);
}

/// `examples/video_surveillance.rs`: balanced fusion tree over camera
/// feeds plus a shared low-frequency database object.
#[test]
fn video_surveillance_core_path() {
    let n_cameras = 8;
    let mut objects = ObjectCatalog::new();
    let cameras: Vec<TypeId> = (0..n_cameras)
        .map(|i| objects.add(ObjectType::new(8.0 + (i % 5) as f64 * 2.0, 0.5)))
        .collect();
    let database = objects.add(ObjectType::new(24.0, 1.0 / 50.0));

    let mut b = OperatorTree::builder();
    let root = b.add_root();
    let mut fusion = vec![root];
    while fusion.len() < n_cameras {
        let parent = fusion.remove(0);
        fusion.push(b.add_child(parent).unwrap());
        fusion.push(b.add_child(parent).unwrap());
    }
    for (slot, &camera) in fusion.iter().zip(&cameras) {
        b.add_leaf(*slot, camera).unwrap();
        b.add_leaf(*slot, database).unwrap();
    }
    let mut tree = b.finish().unwrap();
    tree.apply_work_model(&objects, &WorkModel::paper(1.1));
    assert_eq!(tree.leaf_count(), 2 * n_cameras);

    let mut platform = Platform::paper(objects.len());
    for (i, &cam) in cameras.iter().enumerate() {
        platform
            .placement
            .add_holder(cam, ServerId::from(i % platform.servers.len()));
    }
    platform.placement.add_holder(database, ServerId(0));
    platform.placement.add_holder(database, ServerId(5));

    let inst = Instance::new(tree, objects, platform, 1.0).expect("valid instance");
    let best = cheapest(&inst, 7).expect("a feasible plan exists");

    let headroom = max_throughput(&inst, &best.mapping);
    assert!(headroom >= inst.rho);
    let sim = simulate(&inst, &best.mapping, &SimConfig::default()).unwrap();
    assert!(sim.achieved_throughput >= inst.rho * 0.95);
}

/// `examples/network_monitoring.rs`: left-deep continuous query, QoS
/// sweep — cost must be monotone in ρ until the feasibility wall.
#[test]
fn network_monitoring_core_path() {
    let mut objects = ObjectCatalog::new();
    let feeds: Vec<TypeId> = (0..8)
        .map(|i| objects.add(ObjectType::new(6.0 + (i % 5) as f64 * 2.0, 0.5)))
        .collect();

    let mut b = OperatorTree::builder();
    let mut join = b.add_root();
    b.add_leaf(join, feeds[0]).unwrap();
    for &feed in &feeds[1..feeds.len() - 1] {
        let next = b.add_child(join).unwrap();
        b.add_leaf(next, feed).unwrap();
        join = next;
    }
    b.add_leaf(join, feeds[feeds.len() - 1]).unwrap();
    let mut tree = b.finish().unwrap();
    tree.apply_work_model(&objects, &WorkModel::paper(1.3));
    assert!(tree.is_left_deep());

    let mut platform = Platform::paper(objects.len());
    for (i, &feed) in feeds.iter().enumerate() {
        platform
            .placement
            .add_holder(feed, ServerId::from(i % platform.servers.len()));
    }

    let mut prev_cost = 0u64;
    for rho in [0.5, 2.0, 8.0] {
        let inst = Instance::new(tree.clone(), objects.clone(), platform.clone(), rho)
            .expect("valid instance");
        let Some(sol) = cheapest(&inst, 11) else {
            continue; // past the catalog's fastest configuration
        };
        assert!(sol.cost >= prev_cost, "cost not monotone in ρ");
        prev_cost = sol.cost;
        let sim = simulate(&inst, &sol.mapping, &SimConfig::default()).unwrap();
        assert!(sim.achieved_throughput >= rho * 0.95);
    }
    assert!(prev_cost > 0, "no QoS point was feasible");
}

/// `examples/cloud_budget.rs`: heuristics vs the analytic lower bound,
/// and vs the exact optimum on a small instance.
#[test]
fn cloud_budget_core_path() {
    for seed in 0..2u64 {
        let inst = paper_instance(10, 0.9, seed);
        let lb = lower_bound(&inst).value();
        let best = cheapest(&inst, seed).expect("small instances are feasible");
        assert!(best.cost >= lb, "heuristic beat the lower bound?!");

        let exact = solve_exact(
            &inst,
            &BranchBoundConfig {
                node_budget: 300_000,
                upper_bound: None,
                workers: 1,
            },
        );
        if exact.mapping.is_some() {
            assert!(exact.cost >= lb);
            assert!(exact.cost <= best.cost);
        }
    }
}

/// `examples/shared_platform.rs`: tree rewriting, joint multi-application
/// placement and budgeted throughput.
#[test]
fn shared_platform_core_path() {
    // 1. Rewriting never breaks instance construction.
    let inst = paper_instance(30, 1.5, 3);
    let model = WorkModel::paper(1.5);
    for strategy in [
        RewriteStrategy::LeftDeep,
        RewriteStrategy::Balanced,
        RewriteStrategy::HuffmanBySize,
    ] {
        let tree = rewrite(&inst.tree, &inst.objects, &model, strategy);
        let variant =
            Instance::new(tree, inst.objects.clone(), inst.platform.clone(), inst.rho).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = solve(
            &SubtreeBottomUp,
            &variant,
            &mut rng,
            &PipelineOptions::default(),
        );
    }

    // 2. Joint placement is never worse than separate platforms.
    let base = paper_instance(15, 1.2, 1);
    let mut apps = Vec::new();
    for k in 0..2u64 {
        let donor = paper_instance(15, 1.2, 100 + k);
        apps.push(
            Instance::new(
                donor.tree.clone(),
                base.objects.clone(),
                base.platform.clone(),
                1.0,
            )
            .unwrap(),
        );
    }
    let mut separate = 0u64;
    for app in &apps {
        let mut rng = StdRng::seed_from_u64(0);
        separate += solve(&SubtreeBottomUp, app, &mut rng, &PipelineOptions::default())
            .expect("each app alone is feasible")
            .cost;
    }
    let multi = MultiInstance::new(apps).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    let joint = solve_joint(
        &multi,
        &SubtreeBottomUp,
        &mut rng,
        &PipelineOptions::default(),
    )
    .expect("joint placement feasible");
    assert!(joint.cost <= separate);

    // 3. Budgeted throughput grows with the budget.
    let inst = paper_instance(20, 1.3, 2);
    let mut prev_rho = 0.0f64;
    for budget in [8_000u64, 60_000] {
        if let Some(res) = max_throughput_under_budget(&inst, &SubtreeBottomUp, budget, 0.05, 0) {
            assert!(res.rho + 1e-9 >= prev_rho);
            prev_rho = res.rho;
        }
    }
}

/// `examples/online_serving.rs`: deterministic trace replay plus a small
/// serve campaign with schema-v2 JSON.
#[test]
fn online_serving_core_path() {
    let params = TraceParams::poisson(0.4, 5.0, 20.0).with_failures(0.05);
    let trace = generate_trace(&params, 42);
    let report = run_trace(&trace, &ServeConfig::default());
    assert_eq!(report.admitted + report.rejected, report.arrivals);
    assert_eq!(report.slo_violations, 0);

    let campaign = ServeCampaign::new("smoke", vec![ServePoint::new("flaky", params)], 2);
    let campaign_report = run_serve_campaign(&campaign);
    assert_eq!(campaign_report.points.len(), 1);
    validate_serve_report(&campaign_report.render_json(true)).expect("schema v2 validates");
}

/// `examples/campaign.rs`: parallel grid sweep with an exact reference
/// column and schema-validated JSON output.
#[test]
fn campaign_core_path() {
    let points: Vec<PointSpec> = [8usize, 12]
        .into_iter()
        .map(|n| PointSpec::new(n.to_string(), ScenarioParams::paper(n, 0.9)))
        .collect();
    let campaign = Campaign::new("example", points, 2).with_reference(ReferenceConfig {
        max_ops: 12,
        node_budget: 200_000,
        workers: 1,
    });
    let report = run_campaign(&campaign);
    assert_eq!(report.points.len(), 2);
    for point in &report.points {
        assert!(point.heuristics.iter().any(|h| h.feasible > 0));
        assert!(point.reference.is_some());
    }
    validate_report(&report.render_json(true)).expect("schema v1 validates");
}
