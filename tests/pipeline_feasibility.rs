//! End-to-end pipeline invariants: whatever a heuristic returns as `Ok`
//! must satisfy every paper constraint, cover all downloads, and cost at
//! least the analytic lower bound.

use rand::rngs::StdRng;
use rand::SeedableRng;
use snsp::prelude::*;
use snsp_core::heuristics::ServerStrategy;

fn scenarios() -> Vec<(ScenarioParams, TreeShape)> {
    vec![
        (ScenarioParams::paper(10, 0.9), TreeShape::Random),
        (ScenarioParams::paper(40, 0.9), TreeShape::Random),
        (ScenarioParams::paper(40, 1.5), TreeShape::Random),
        (ScenarioParams::paper(60, 1.7), TreeShape::Random),
        (ScenarioParams::paper(25, 1.1), TreeShape::LeftDeep),
        (
            ScenarioParams::paper(15, 0.9).with_sizes(snsp_gen::SizeRange::LARGE),
            TreeShape::Random,
        ),
        (
            ScenarioParams::paper(40, 0.9).with_freq(snsp_gen::Frequency::LOW),
            TreeShape::Random,
        ),
    ]
}

#[test]
fn every_ok_solution_is_feasible_and_above_the_lower_bound() {
    for (params, shape) in scenarios() {
        for seed in 0..4u64 {
            let inst = snsp_gen::generate(&params, shape, seed);
            let lb = lower_bound(&inst).value();
            for h in all_heuristics() {
                let mut rng = StdRng::seed_from_u64(seed);
                if let Ok(sol) = solve(h.as_ref(), &inst, &mut rng, &PipelineOptions::default()) {
                    let violations = check(&inst, &sol.mapping);
                    assert!(
                        violations.is_empty(),
                        "{} on N={} α={} seed={seed}: {violations:?}",
                        h.name(),
                        params.n_ops,
                        params.alpha
                    );
                    assert!(sol.cost >= lb, "{}: cost {} < LB {lb}", h.name(), sol.cost);
                    assert_eq!(sol.cost, sol.mapping.cost(&inst));
                }
            }
        }
    }
}

#[test]
fn max_throughput_of_ok_solutions_covers_rho() {
    let inst = paper_instance(30, 1.2, 9);
    for h in all_heuristics() {
        let mut rng = StdRng::seed_from_u64(9);
        if let Ok(sol) = solve(h.as_ref(), &inst, &mut rng, &PipelineOptions::default()) {
            let cap = max_throughput(&inst, &sol.mapping);
            assert!(cap >= inst.rho * (1.0 - 1e-9), "{}: {cap}", h.name());
        }
    }
}

#[test]
fn forcing_three_loop_servers_on_random_still_validates() {
    let inst = paper_instance(20, 0.9, 4);
    let opts = PipelineOptions {
        server_strategy: Some(ServerStrategy::ThreeLoop),
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(4);
    let sol = solve(&Random, &inst, &mut rng, &opts).unwrap();
    assert!(is_feasible(&inst, &sol.mapping));
}

#[test]
fn rho_zero_point_five_is_never_harder_than_rho_one() {
    // Halving the throughput requirement can only help: any heuristic
    // feasible at ρ = 1 must stay feasible at ρ = 0.5 with cost no larger.
    for seed in 0..3u64 {
        let hard = snsp_gen::generate(&ScenarioParams::paper(40, 1.6), TreeShape::Random, seed);
        let easy = snsp_gen::generate(
            &ScenarioParams::paper(40, 1.6).with_rho(0.5),
            TreeShape::Random,
            seed,
        );
        for h in all_heuristics() {
            let mut rng = StdRng::seed_from_u64(seed);
            let hard_sol = solve(h.as_ref(), &hard, &mut rng, &PipelineOptions::default());
            let mut rng = StdRng::seed_from_u64(seed);
            let easy_sol = solve(h.as_ref(), &easy, &mut rng, &PipelineOptions::default());
            if let Ok(hs) = hard_sol {
                let es = easy_sol
                    .unwrap_or_else(|e| panic!("{} feasible at ρ=1 but not ρ=0.5: {e}", h.name()));
                assert!(
                    es.cost <= hs.cost,
                    "{}: ρ=0.5 cost {} > ρ=1 cost {}",
                    h.name(),
                    es.cost,
                    hs.cost
                );
            }
        }
    }
}

#[test]
fn infeasible_instances_fail_for_every_heuristic() {
    // Far beyond the α threshold nothing can host the root operator.
    let inst = paper_instance(80, 2.4, 0);
    for h in all_heuristics() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(
            solve(h.as_ref(), &inst, &mut rng, &PipelineOptions::default()).is_err(),
            "{} should fail",
            h.name()
        );
    }
}

#[test]
fn downloads_are_deduplicated_per_processor() {
    let inst = paper_instance(50, 0.9, 2);
    let mut rng = StdRng::seed_from_u64(2);
    let sol = solve(
        &SubtreeBottomUp,
        &inst,
        &mut rng,
        &PipelineOptions::default(),
    )
    .unwrap();
    for u in sol.mapping.proc_ids() {
        let mut seen = std::collections::BTreeSet::new();
        for (ty, _) in sol.mapping.downloads_of(u) {
            assert!(seen.insert(ty), "processor {u} downloads {ty} twice");
        }
    }
}
