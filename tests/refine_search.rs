//! End-to-end integration of the refinement subsystem through the
//! facade: the anytime contract across every constructive heuristic, the
//! solve-path post-pass, the serve layer's budgeted departure
//! refinement (joint verification on live snapshots), and the schema-v4
//! campaign artifact.

use snsp::prelude::*;
use snsp_core::multi::verify_joint;

#[test]
fn refinement_never_regresses_any_heuristic_on_the_paper_grid() {
    for &(n, alpha) in &[(20usize, 0.9), (40, 1.3), (60, 1.7)] {
        for seed in 0..2u64 {
            let inst =
                snsp::gen::generate(&ScenarioParams::paper(n, alpha), TreeShape::Random, seed);
            for h in all_heuristics() {
                let Ok(start) = solve_seeded(h.as_ref(), &inst, seed, &PipelineOptions::default())
                else {
                    continue;
                };
                let out = snsp::search::refine(
                    &inst,
                    &start,
                    Default::default(),
                    &RefineOptions {
                        max_evals: 400,
                        ..Default::default()
                    },
                );
                assert!(
                    out.solution.cost <= start.cost,
                    "{} at N={n} α={alpha} seed {seed}: refined {} > start {}",
                    h.name(),
                    out.solution.cost,
                    start.cost
                );
                assert!(is_feasible(&inst, &out.solution.mapping));
            }
        }
    }
}

#[test]
fn solve_refined_honors_the_pipeline_refine_field() {
    let inst = snsp::gen::paper_instance(100, 1.5, 3);
    let opts = PipelineOptions {
        refine: Some(RefineOptions {
            driver: RefineDriver::Anneal(AnnealSchedule::default()),
            max_evals: 2_000,
            ..Default::default()
        }),
        ..Default::default()
    };
    let plain = solve_seeded(&SubtreeBottomUp, &inst, 3, &PipelineOptions::default());
    let refined = snsp::search::solve_refined_seeded(&SubtreeBottomUp, &inst, 3, &opts);
    if let (Ok(plain), Ok(refined)) = (plain, refined) {
        assert!(refined.cost <= plain.cost);
        assert!(is_feasible(&inst, &refined.mapping));
    }
}

#[test]
fn budgeted_departure_refinement_keeps_serve_snapshots_jointly_valid() {
    // An online run whose departures flow through the budgeted refine:
    // every post-departure snapshot must verify jointly, and the refined
    // platform must never cost more than the unrefined single pass.
    let trace = generate_trace(&TraceParams::poisson(0.5, 4.0, 30.0), 11);
    let report = run_trace(&trace, &ServeConfig::default());
    assert_eq!(report.slo_violations, 0);
    assert!(report.departed > 0, "the trace must exercise departures");

    // Replay by hand with a deep refinement budget, verifying every
    // post-departure snapshot jointly and pinning cost monotonicity of
    // each departure against its own pre-departure platform.
    let (objects, platform) = trace_environment(&trace.params, trace.seed);
    let mut live = LivePlatform::new(objects.clone(), platform.clone());
    let mut departures = 0usize;
    for ev in &trace.events {
        match ev.event {
            TraceEvent::Arrive { tenant, spec, .. } => {
                let seed = trace.seed ^ (tenant.0 as u64 + 1);
                let inst = tenant_instance(&objects, &platform, &spec);
                let _ = live.admit(
                    tenant,
                    inst,
                    &SubtreeBottomUp,
                    seed,
                    &PipelineOptions::default(),
                );
            }
            TraceEvent::Depart { tenant } => {
                let before = live.cost();
                let mut deep = Budget::new(5_000);
                if live.depart_budgeted(tenant, &mut deep) {
                    departures += 1;
                    assert!(live.cost() <= before, "a departure raised the cost");
                    if let Some((multi, sol)) = live.snapshot() {
                        verify_joint(&multi, &sol)
                            .expect("refined snapshot verifies after departure");
                    }
                }
            }
            TraceEvent::ProcessorFail { .. } => {} // exercised elsewhere
        }
    }
    assert!(
        departures > 0,
        "the replay must exercise budgeted departures"
    );
}

#[test]
fn committed_refine_artifact_stays_valid_and_regenerable() {
    // The repo-root BENCH_refine.json is the acceptance artifact: it
    // must parse and validate as schema v4, and its structural
    // invariants (never_worse on every point) are enforced by the
    // validator itself.
    let body = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_refine.json"))
        .expect("committed BENCH_refine.json exists at the repo root");
    validate_refine_report(&body).expect("committed artifact validates");
}
