//! Integration tests for the run-diff regression sentinel: the
//! committed report artifacts must self-diff clean, a deterministic
//! column injection must be flagged as a regression, and wall-clock
//! drift must stay on the informational side of the gate.

use snsp::sweep::{diff_reports, DiffOptions};

fn committed(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed artifact {} unreadable: {e}", path.display()))
}

/// Every committed artifact is its own baseline: zero regressions,
/// zero informational drift.
#[test]
fn committed_artifacts_self_diff_clean() {
    for name in [
        "BENCH_serve.json",
        "BENCH_chaos.json",
        "BENCH_perf.json",
        "BENCH_refine.json",
        "TELEMETRY.json",
    ] {
        let body = committed(name);
        let report = diff_reports(&body, &body, DiffOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e:?}"));
        assert!(report.clean(), "{name}: {}", report.render_table());
        assert!(
            report.informational.is_empty(),
            "{name} self-diff must not even drift"
        );
        assert!(report.compared > 10, "{name}: diff walked the document");
    }
}

/// Injecting a change into a deterministic column of the committed
/// serve report must trip the sentinel — this is the exact negative
/// check CI runs against a perturbed copy.
#[test]
fn injected_det_column_regression_is_flagged() {
    let body = committed("BENCH_serve.json");
    let needle = "\"admitted\": ";
    let at = body
        .find(needle)
        .expect("serve report has admission counts");
    let (head, tail) = body.split_at(at + needle.len());
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    let bumped: u64 = digits.parse::<u64>().expect("integer column") + 1;
    let perturbed = format!("{head}{bumped}{}", &tail[digits.len()..]);
    let report = diff_reports(&body, &perturbed, DiffOptions::default()).expect("same kind");
    assert!(!report.clean(), "perturbed det column must be a regression");
    assert!(
        report
            .regressions
            .iter()
            .any(|e| e.path.contains("admitted")),
        "{}",
        report.render_table()
    );
    assert!(report.render_table().contains("REGRESSION"));
}

/// Replaces the scalar value of `key`'s first occurrence.
fn with_value(body: &str, key: &str, replacement: &str) -> String {
    let needle = format!("\"{key}\": ");
    let at = body.find(&needle).expect("key present in artifact") + needle.len();
    let end = at + body[at..].find([',', '\n']).expect("value terminated");
    format!("{}{replacement}{}", &body[..at], &body[end..])
}

/// Wall-clock columns never gate by default, and a tolerance turns
/// outsized drift into a failure while forgiving noise. The committed
/// serve artifact is the timed form, so its own timing block is the
/// fixture.
#[test]
fn timing_columns_are_toleranced_not_strict() {
    let body = committed("BENCH_serve.json");
    let drifted = with_value(&body, "total_s", "9.5");
    assert_ne!(body, drifted);
    let report = diff_reports(&body, &drifted, DiffOptions::default()).expect("same kind");
    assert!(report.clean(), "untoleranced timing drift is informational");
    assert_eq!(report.informational.len(), 1);
    let tight = DiffOptions {
        timing_tolerance: Some(0.5),
    };
    let report = diff_reports(&body, &drifted, tight).expect("same kind");
    assert!(
        !report.clean(),
        "outsized drift must breach a 50% tolerance"
    );
    // The stable-vs-timed form split (value nulled on one side) never
    // gates, even with a tolerance configured.
    let stable = with_value(&body, "run_s", "null");
    let report = diff_reports(&body, &stable, tight).expect("same kind");
    assert!(report.clean(), "null-vs-value on timing is the form split");
}

/// Cross-kind comparisons refuse instead of reporting nonsense.
#[test]
fn cross_kind_diffs_are_refused() {
    let serve = committed("BENCH_serve.json");
    let telemetry = committed("TELEMETRY.json");
    let err = diff_reports(&serve, &telemetry, DiffOptions::default()).unwrap_err();
    assert!(err[0].contains("kind mismatch"), "{err:?}");
}
