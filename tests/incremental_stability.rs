//! Solution-stability pins for the incremental demand engine.
//!
//! The probe accumulator replaced the recompute-per-query demand path in
//! every heuristic; `PlacementOptions::demand_oracle` keeps the original
//! path alive. These tests pin that, on the paper's fig2/fig3 seed grids,
//! both engines return **byte-identical** solutions — same cost, same
//! purchased kinds, same operator assignment, same download streams — so
//! the rewrite is a pure performance change. The exact solver is pinned
//! the same way against its retained reference implementation.

use snsp::prelude::*;
use snsp_core::heuristics::PlacementOptions;
use snsp_solver::solve_exact_reference;

fn pipelines() -> (PipelineOptions, PipelineOptions) {
    let incremental = PipelineOptions::default();
    let oracle = PipelineOptions {
        placement: PlacementOptions {
            demand_oracle: true,
            ..Default::default()
        },
        ..Default::default()
    };
    (incremental, oracle)
}

fn assert_identical(label: &str, a: &Result<Solution, String>, b: &Result<Solution, String>) {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            assert_eq!(x.cost, y.cost, "{label}: cost diverged");
            assert_eq!(
                x.mapping.proc_kinds, y.mapping.proc_kinds,
                "{label}: purchased kinds diverged"
            );
            assert_eq!(
                x.mapping.assignment, y.mapping.assignment,
                "{label}: operator assignment diverged"
            );
            assert_eq!(
                x.mapping.downloads, y.mapping.downloads,
                "{label}: download streams diverged"
            );
        }
        (Err(x), Err(y)) => assert_eq!(x, y, "{label}: error kind diverged"),
        (x, y) => panic!("{label}: feasibility diverged ({x:?} vs {y:?})"),
    }
}

fn run_grid(points: &[(usize, f64)], seeds: u64) {
    let (incremental, oracle) = pipelines();
    for &(n, alpha) in points {
        for seed in 0..seeds {
            let inst = paper_instance(n, alpha, seed);
            for h in all_heuristics() {
                let label = format!("{} N={n} α={alpha} seed={seed}", h.name());
                let fast = solve_seeded(h.as_ref(), &inst, seed, &incremental)
                    .map_err(|e| format!("{e:?}"));
                let slow =
                    solve_seeded(h.as_ref(), &inst, seed, &oracle).map_err(|e| format!("{e:?}"));
                assert_identical(&label, &fast, &slow);
            }
        }
    }
}

#[test]
fn heuristics_match_oracle_on_fig2_grids() {
    // Fig. 2's N axis at both of the paper's α settings.
    let points: Vec<(usize, f64)> = (20..=140)
        .step_by(20)
        .flat_map(|n| [(n, 0.9), (n, 1.7)])
        .collect();
    run_grid(&points, 3);
}

#[test]
fn heuristics_match_oracle_on_fig3_grids() {
    // Fig. 3's α axis at N = 60 (paper) and N = 20 (discussed).
    let points: Vec<(usize, f64)> = (5..=25)
        .step_by(2)
        .flat_map(|a| [(60, a as f64 / 10.0), (20, a as f64 / 10.0)])
        .collect();
    run_grid(&points, 3);
}

#[test]
fn exact_search_matches_reference_implementation() {
    for seed in 0..4u64 {
        for &(n, alpha) in &[(6usize, 0.9), (8, 1.3), (10, 1.0), (12, 1.6)] {
            let inst = paper_instance(n, alpha, seed);
            let config = BranchBoundConfig::default();
            let fast = solve_exact(&inst, &config);
            let slow = solve_exact_reference(&inst, &config);
            let label = format!("B&B N={n} α={alpha} seed={seed}");
            assert_eq!(fast.cost, slow.cost, "{label}: cost diverged");
            assert_eq!(fast.optimal, slow.optimal, "{label}: optimality diverged");
            match (&fast.mapping, &slow.mapping) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.proc_kinds, y.proc_kinds, "{label}: kinds diverged");
                    assert_eq!(x.assignment, y.assignment, "{label}: assignment diverged");
                    assert_eq!(x.downloads, y.downloads, "{label}: downloads diverged");
                }
                (None, None) => {}
                (x, y) => panic!("{label}: feasibility diverged ({x:?} vs {y:?})"),
            }
        }
    }
}
