//! Integration coverage for `snsp-telemetry` through the facade: the
//! instrumentation must observe without perturbing (stable BENCH
//! artifacts byte-identical with telemetry on or off), and the
//! deterministic metric core must be worker-count-independent, while
//! the sharded serve tier and the parallel pool feed it nonzero
//! steal/prune/admission counts.

use snsp::prelude::*;
use snsp::telemetry::{Class, Snapshot};

/// Name-keyed counter values.
type CounterCore = Vec<(String, u64)>;
/// Name-keyed histogram summaries: (name, count, min, p50, max).
type HistogramCore = Vec<(String, u64, f64, f64, f64)>;

fn sweep_campaign(workers: usize) -> Campaign {
    let points = vec![
        PointSpec::new("8", ScenarioParams::paper(8, 0.9)),
        PointSpec::new("12", ScenarioParams::paper(12, 1.3)),
    ];
    Campaign::new("telemetry-int", points, 2)
        .with_reference(ReferenceConfig {
            max_ops: 12,
            node_budget: 200_000,
            workers: 1,
        })
        .with_workers(workers)
}

fn refine_campaign(workers: usize) -> RefineCampaign {
    let mut c = snsp::search::refine_grid("ci", 1).expect("ci grid exists");
    c.points.truncate(3);
    c.refine.max_evals = 300;
    c.with_workers(workers)
}

// Mirrors the `sharded-ci` grid the committed TELEMETRY.json is built
// from, so the counter expectations below transfer to that artifact.
fn serve_campaign(workers: usize) -> ServeCampaign {
    let points = vec![
        ServePoint::new("calm", TraceParams::poisson(0.6, 5.0, 20.0)),
        ServePoint::new(
            "flaky",
            TraceParams::poisson(0.8, 5.0, 20.0).with_failures(0.1),
        ),
    ];
    ServeCampaign::new("telemetry-int", points, 2)
        .with_shards(4, workers)
        .with_workers(workers)
}

/// The deterministic (Det-class) projection of a snapshot: counter
/// values plus full histogram summaries, both name-sorted already.
/// Restricted to touched metrics (value/count > 0) because metric
/// registration outlives `capture()` within one process, so earlier
/// campaigns in the same test binary leave zeroed entries behind.
fn det_core(snap: &Snapshot) -> (CounterCore, HistogramCore) {
    let counters = snap
        .counters
        .iter()
        .filter(|c| c.class == Class::Det && c.value > 0)
        .map(|c| (c.name.to_string(), c.value))
        .collect();
    let histograms = snap
        .histograms
        .iter()
        .filter(|h| h.class == Class::Det && h.count > 0)
        .map(|h| (h.name.to_string(), h.count, h.min, h.p50, h.max))
        .collect();
    (counters, histograms)
}

/// Telemetry is pure observation: every stable-form BENCH rendering must
/// be byte-identical whether collection is on or off.
#[test]
fn stable_bench_artifacts_are_unperturbed_by_telemetry() {
    let sweep_off = run_campaign(&sweep_campaign(2)).render_json(false);
    let (sweep_on, _) = capture(|| run_campaign(&sweep_campaign(2)).render_json(false));
    assert_eq!(sweep_off, sweep_on, "BENCH_sweep.json bytes moved");

    let refine_off = run_refine_campaign(&refine_campaign(2)).render_json(false);
    let (refine_on, _) = capture(|| run_refine_campaign(&refine_campaign(2)).render_json(false));
    assert_eq!(refine_off, refine_on, "BENCH_refine.json bytes moved");

    let serve_off = run_serve_campaign(&serve_campaign(2)).render_json(false);
    let (serve_on, _) = capture(|| run_serve_campaign(&serve_campaign(2)).render_json(false));
    assert_eq!(serve_off, serve_on, "BENCH_serve.json bytes moved");
}

/// The commutativity contract: Det-class counters and histograms agree
/// at 1, 2 and 4 workers for all three campaign kinds (stable BENCH
/// bytes too, with telemetry enabled throughout).
#[test]
fn deterministic_core_is_worker_count_independent() {
    let (sweep_base, snap1) = capture(|| run_campaign(&sweep_campaign(1)).render_json(false));
    let sweep_det = det_core(&snap1);
    let (refine_base, snap1) =
        capture(|| run_refine_campaign(&refine_campaign(1)).render_json(false));
    let refine_det = det_core(&snap1);
    let (serve_base, snap1) = capture(|| run_serve_campaign(&serve_campaign(1)).render_json(false));
    let serve_det = det_core(&snap1);
    assert!(
        !serve_det.0.is_empty(),
        "serve campaigns must register deterministic counters"
    );
    assert!(
        !refine_det.0.is_empty(),
        "refinement must register deterministic move counters"
    );

    for workers in [2usize, 4] {
        let (body, snap) = capture(|| run_campaign(&sweep_campaign(workers)).render_json(false));
        assert_eq!(
            sweep_base, body,
            "sweep bytes diverged at {workers} workers"
        );
        assert_eq!(
            sweep_det,
            det_core(&snap),
            "sweep det core diverged at {workers} workers"
        );
        let (body, snap) =
            capture(|| run_refine_campaign(&refine_campaign(workers)).render_json(false));
        assert_eq!(
            refine_base, body,
            "refine bytes diverged at {workers} workers"
        );
        assert_eq!(
            refine_det,
            det_core(&snap),
            "refine det core diverged at {workers} workers"
        );
        let (body, snap) =
            capture(|| run_serve_campaign(&serve_campaign(workers)).render_json(false));
        assert_eq!(
            serve_base, body,
            "serve bytes diverged at {workers} workers"
        );
        assert_eq!(
            serve_det,
            det_core(&snap),
            "serve det core diverged at {workers} workers"
        );
    }
}

/// The sharded serve campaign must light up the counters the committed
/// TELEMETRY.json is pinned on: admissions, ShardMsg volume, admission
/// prunes — and the parallel pool must register steals in the overlay.
#[test]
fn sharded_serve_campaign_feeds_the_expected_counters() {
    let (report, snap) = capture(|| run_serve_campaign(&serve_campaign(4)));
    let admitted: usize = report.points.iter().map(|p| p.admitted).sum();
    let rejected: usize = report.points.iter().map(|p| p.rejected).sum();
    assert_eq!(
        snap.counter("serve.admitted"),
        Some(admitted as u64),
        "admission counter must reconcile with the report"
    );
    assert_eq!(snap.counter("serve.rejected").unwrap_or(0), rejected as u64);
    assert_eq!(
        snap.counter("serve.shardmsg.admitted"),
        Some(admitted as u64),
        "every admission crosses the shard protocol exactly once"
    );
    let pruned = snap.counter("serve.admit.pack_pruned").unwrap_or(0)
        + snap.counter("serve.consolidation.evac_pruned").unwrap_or(0);
    assert!(
        pruned > 0,
        "admission packing or the consolidation sweep must charge prunes"
    );
    assert!(
        snap.counter("pool.steals").unwrap_or(0) > 0,
        "a 4-worker campaign pool must register steals"
    );
    assert!(
        snap.histogram("serve.shard.admitted")
            .is_some_and(|h| h.count > 0),
        "per-shard admission imbalance histogram is recorded"
    );
    // Failure accounting reconciles even when the flaky trace happens
    // to lose nobody (the counter then never registers).
    let failures: usize = report.points.iter().map(|p| p.failures).sum();
    assert_eq!(snap.counter("serve.failures").unwrap_or(0), failures as u64);
}

/// The solver's instrumentation surfaces pool stats and certified
/// bounds through the facade, telemetry on or off.
#[test]
fn solver_surfaces_pool_stats_and_bounds_without_telemetry() {
    let inst = snsp::gen::paper_instance(12, 0.9, 7);
    let config = BranchBoundConfig {
        node_budget: 200_000,
        upper_bound: None,
        workers: 4,
    };
    let res = solve_exact(&inst, &config);
    assert!(res.nodes > 0);
    if res.optimal && res.mapping.is_some() {
        assert_eq!(res.bound, res.cost, "a proven optimum certifies itself");
    } else {
        assert_eq!(res.bound, lower_bound(&inst).value());
    }
    assert!(
        res.pool.steals > 0,
        "the coordinating thread seeds the deque, so a 4-worker solve steals"
    );
}

fn chaos_campaign(workers: usize) -> ChaosCampaign {
    let points = vec![
        ChaosPoint::new(
            "quiet",
            TraceParams::poisson(0.4, 4.0, 15.0),
            FaultSpec::seeded(1).with_ticks(3.0),
        ),
        ChaosPoint::new(
            "crashy",
            TraceParams::poisson(0.5, 4.0, 15.0).with_failures(0.05),
            FaultSpec::seeded(2)
                .with_crashes(0.25)
                .with_msg_faults(0.1, 0.05, 0.05)
                .with_retry(RetryPolicy::standard())
                .with_ticks(2.0),
        ),
    ];
    ChaosCampaign::new("telemetry-chaos", points, 2)
        .with_workers(workers)
        .with_shards(2, workers)
}

/// The chaos subcommand's `--telemetry` path: a captured chaos campaign
/// must light up the fault counters, reconcile them with the report, and
/// keep the deterministic core (and stable BENCH_chaos bytes)
/// worker-count-independent.
#[test]
fn chaos_campaign_telemetry_reconciles_and_is_worker_independent() {
    let (base_body, snap) = capture(|| run_chaos_campaign(&chaos_campaign(1)).render_json(false));
    let base_det = det_core(&snap);
    let crashes = snap.counter("fault.crashes").unwrap_or(0);
    assert!(crashes > 0, "the crashy point must inject crashes");
    assert_eq!(
        snap.counter("fault.recoveries"),
        Some(crashes),
        "every crash recovers"
    );
    assert!(
        snap.counter("fault.injected").unwrap_or(0) >= crashes,
        "the umbrella fault counter covers at least the crashes"
    );
    for workers in [2usize, 4] {
        let (body, snap) =
            capture(|| run_chaos_campaign(&chaos_campaign(workers)).render_json(false));
        assert_eq!(base_body, body, "chaos bytes diverged at {workers} workers");
        assert_eq!(
            base_det,
            det_core(&snap),
            "chaos det core diverged at {workers} workers"
        );
    }
}
