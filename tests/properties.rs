//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use snsp::prelude::*;
use snsp_engine::max_min_fair;

proptest! {
    // Bounded so the whole suite stays well under a minute in CI;
    // override with PROPTEST_CASES for deeper local runs.
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random full binary trees always validate, have N+1 leaves and a
    /// children-before-parents post-order.
    #[test]
    fn random_trees_are_structurally_sound(n in 1usize..120, seed in 0u64..5000) {
        let inst = paper_instance(n, 0.9, seed);
        prop_assert!(inst.tree.validate(&inst.objects).is_ok());
        prop_assert_eq!(inst.tree.len(), n);
        prop_assert_eq!(inst.tree.leaf_count(), n + 1);
        let order = inst.tree.postorder();
        prop_assert_eq!(order.len(), n);
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &op)| (op, i)).collect();
        for op in inst.tree.ops() {
            for &c in inst.tree.children(op) {
                prop_assert!(pos[&c] < pos[&op]);
            }
        }
    }

    /// Output sizes accumulate: a parent's δ is the sum of its inputs, so
    /// the root's output equals the total leaf mass.
    #[test]
    fn outputs_accumulate_to_leaf_mass(n in 1usize..80, seed in 0u64..2000) {
        let inst = paper_instance(n, 1.3, seed);
        let leaf_mass: f64 = inst
            .tree
            .ops()
            .flat_map(|op| inst.tree.leaf_types(op).iter().copied())
            .map(|ty| inst.objects.size(ty))
            .sum();
        let root_out = inst.tree.output(inst.tree.root());
        prop_assert!((root_out - leaf_mass).abs() < 1e-6 * leaf_mass.max(1.0));
    }

    /// Work is monotone in α for inputs above 1 MB (always true for the
    /// paper's ranges).
    #[test]
    fn work_monotone_in_alpha(n in 2usize..40, seed in 0u64..500) {
        let lo = paper_instance(n, 0.9, seed);
        let hi = paper_instance(n, 1.5, seed);
        for op in lo.tree.ops() {
            prop_assert!(lo.tree.work(op) <= hi.tree.work(op) + 1e-12);
        }
    }

    /// `max_throughput` is exactly the feasibility boundary: scaling ρ just
    /// below keeps the mapping feasible, just above breaks it.
    #[test]
    fn max_throughput_is_the_feasibility_boundary(seed in 0u64..60) {
        let inst = paper_instance(15, 1.1, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let Ok(sol) = solve(&SubtreeBottomUp, &inst, &mut rng, &PipelineOptions::default())
        else { return Ok(()); };
        let cap = max_throughput(&inst, &sol.mapping);
        prop_assume!(cap.is_finite() && cap > 0.0);
        let mut lo = inst.clone();
        lo.rho = cap * 0.98;
        prop_assert!(is_feasible(&lo, &sol.mapping));
        let mut hi = inst.clone();
        hi.rho = cap * 1.02;
        prop_assert!(!is_feasible(&hi, &sol.mapping));
    }

    /// The downgrade pass can only reduce cost, never break feasibility.
    #[test]
    fn downgrade_is_sound_and_monotone(seed in 0u64..60) {
        let inst = paper_instance(20, 1.2, seed);
        let run = |downgrade: bool| {
            let mut rng = StdRng::seed_from_u64(seed);
            solve(
                &CompGreedy,
                &inst,
                &mut rng,
                &PipelineOptions { downgrade, ..Default::default() },
            )
        };
        if let (Ok(with), Ok(without)) = (run(true), run(false)) {
            prop_assert!(with.cost <= without.cost);
            prop_assert!(is_feasible(&inst, &with.mapping));
        }
    }

    /// Max-min fairness never oversubscribes any resource and never
    /// assigns a negative rate.
    #[test]
    fn max_min_fair_respects_capacities(
        caps in proptest::collection::vec(1.0f64..1000.0, 1..6),
        paths in proptest::collection::vec(
            proptest::collection::vec(0usize..6, 0..4),
            0..8,
        ),
    ) {
        let flows: Vec<Vec<usize>> = paths
            .into_iter()
            .map(|p| {
                let mut q: Vec<usize> =
                    p.into_iter().map(|r| r % caps.len()).collect();
                q.sort_unstable();
                q.dedup();
                q
            })
            .collect();
        let rates = max_min_fair(&caps, &flows);
        for &r in &rates {
            prop_assert!(r >= 0.0);
        }
        for (res, &cap) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.contains(&res))
                .map(|(_, &r)| r)
                .sum();
            prop_assert!(used <= cap * (1.0 + 1e-9) + 1e-9);
        }
    }

    /// Costs returned by the pipeline always equal the sum of the
    /// purchased kinds, and every purchased processor hosts at least one
    /// operator.
    #[test]
    fn solutions_have_no_idle_processors(seed in 0u64..80) {
        let inst = paper_instance(18, 1.0, seed);
        for h in all_heuristics() {
            let mut rng = StdRng::seed_from_u64(seed);
            if let Ok(sol) = solve(h.as_ref(), &inst, &mut rng, &PipelineOptions::default()) {
                let groups = sol.mapping.groups();
                for (u, ops) in groups.iter().enumerate() {
                    prop_assert!(
                        !ops.is_empty(),
                        "{} bought processor {u} and left it idle",
                        h.name()
                    );
                }
            }
        }
    }
}
