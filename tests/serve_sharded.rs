//! Integration tests for the sharded serve tier: cross-shard buy/evict
//! decisions must resolve identically no matter how the per-tick shard
//! batches are scheduled. The same trace replays at 1/2/4 shards, each
//! shard count driven with 1 and 4 workers, and every worker count must
//! produce the identical event log, log fingerprint, metrics, and final
//! platform fingerprint (per-shard costs, purchased kinds, assignments
//! and downloads). One shard must additionally reproduce the unsharded
//! replay exactly, modulo the `s0` log prefix.

use snsp::prelude::*;

/// A trace with enough churn to exercise every cross-shard path:
/// admissions that buy, departures that consolidate, and failures whose
/// global lottery spans shards and whose evictions cross back.
fn churny_params() -> TraceParams {
    TraceParams::poisson(0.8, 5.0, 30.0).with_failures(0.15)
}

#[test]
fn sharded_replay_is_identical_at_every_worker_count() {
    let trace = generate_trace(&churny_params(), 21);
    for shards in [1usize, 2, 4] {
        let (base, base_platform) = replay_trace_sharded(
            &trace,
            &ServeConfig::default(),
            &ShardOptions { shards, workers: 1 },
        );
        assert_eq!(base.admitted + base.rejected, base.arrivals);
        for workers in [2usize, 4] {
            let (report, platform) = replay_trace_sharded(
                &trace,
                &ServeConfig::default(),
                &ShardOptions { shards, workers },
            );
            let at = format!("{shards} shards, {workers} workers");
            assert_eq!(base.log, report.log, "{at}: event log diverged");
            assert_eq!(base.log_hash(), report.log_hash(), "{at}");
            assert_eq!(
                base_platform.fingerprint(),
                platform.fingerprint(),
                "{at}: final platform state diverged"
            );
            assert_eq!(base.final_cost, report.final_cost, "{at}");
            assert_eq!(base.peak_cost, report.peak_cost, "{at}");
            assert_eq!(base.peak_procs, report.peak_procs, "{at}");
            assert_eq!(base.evicted, report.evicted, "{at}");
            assert_eq!(
                base.cost_time_integral, report.cost_time_integral,
                "{at}: integrals must match bit-for-bit"
            );
            assert_eq!(base.mean_utilization, report.mean_utilization, "{at}");
        }
    }
}

/// One shard is the unsharded platform: same admissions, same packing,
/// same metrics; log lines differ only by the `s0 ` shard prefix.
#[test]
fn one_shard_reproduces_the_unsharded_replay() {
    let trace = generate_trace(&churny_params(), 33);
    let unsharded = run_trace(&trace, &ServeConfig::default());
    let sharded = run_trace_sharded(
        &trace,
        &ServeConfig::default(),
        &ShardOptions {
            shards: 1,
            workers: 4,
        },
    );
    assert_eq!(sharded.admitted, unsharded.admitted);
    assert_eq!(sharded.rejected, unsharded.rejected);
    assert_eq!(sharded.departed, unsharded.departed);
    assert_eq!(sharded.evicted, unsharded.evicted);
    assert_eq!(sharded.failures, unsharded.failures);
    assert_eq!(sharded.final_cost, unsharded.final_cost);
    assert_eq!(sharded.peak_cost, unsharded.peak_cost);
    assert_eq!(sharded.cost_time_integral, unsharded.cost_time_integral);
    assert_eq!(sharded.mean_utilization, unsharded.mean_utilization);
    let stripped: Vec<String> = sharded
        .log
        .iter()
        .map(|l| l.replacen(" s0 ", " ", 1))
        .collect();
    assert_eq!(stripped, unsharded.log, "logs differ beyond the s0 prefix");
}

/// Shard snapshots stay jointly feasible through churn: after a full
/// replay with failures, every shard's compacted snapshot passes the
/// paper's joint constraint verifier.
#[test]
fn final_shard_snapshots_verify_jointly() {
    let trace = generate_trace(&churny_params(), 5);
    let (report, platform) = replay_trace_sharded(
        &trace,
        &ServeConfig::default(),
        &ShardOptions {
            shards: 4,
            workers: 2,
        },
    );
    assert!(report.admitted > 0);
    let mut resident = 0;
    for snap in platform.snapshots().into_iter().flatten() {
        let (multi, sol) = snap;
        verify_joint(&multi, &sol).expect("shard snapshot verifies");
        resident += sol.assignments.len();
    }
    assert_eq!(resident, platform.tenant_count());
    assert_eq!(platform.cost(), report.final_cost);
}

/// Admission latencies are sampled per successful admission in both the
/// sharded and unsharded paths (values are wall-clock and unstable, but
/// the sample *count* is deterministic).
#[test]
fn admission_latency_sample_counts_are_deterministic() {
    let trace = generate_trace(&churny_params(), 13);
    let unsharded = run_trace(&trace, &ServeConfig::default());
    assert_eq!(unsharded.admit_latencies_us.len(), unsharded.admitted);
    for shards in [1usize, 2] {
        let report = run_trace_sharded(
            &trace,
            &ServeConfig::default(),
            &ShardOptions { shards, workers: 2 },
        );
        assert_eq!(report.admit_latencies_us.len(), report.admitted);
        assert!(report.admit_latencies_us.iter().all(|&us| us > 0.0));
    }
}
