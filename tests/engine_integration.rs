//! The discrete-event engine as the arbiter: every mapping the placement
//! pipeline declares feasible must actually sustain ρ when executed, and
//! can never beat the analytic throughput bound.

use rand::rngs::StdRng;
use rand::SeedableRng;
use snsp::prelude::*;

/// Window-bias tolerance: operators may run `buffer` results ahead of the
/// root at both window edges (see `snsp_engine::SimConfig`).
const TOL: f64 = 1.05;

#[test]
fn all_heuristics_sustain_rho_in_the_engine() {
    for seed in 0..3u64 {
        let inst = paper_instance(25, 1.1, seed);
        for h in all_heuristics() {
            let mut rng = StdRng::seed_from_u64(seed);
            let Ok(sol) = solve(h.as_ref(), &inst, &mut rng, &PipelineOptions::default()) else {
                continue;
            };
            let report = simulate(&inst, &sol.mapping, &SimConfig::default())
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", h.name()));
            assert!(
                report.achieved_throughput >= inst.rho * 0.95,
                "{} seed {seed}: {:.3} < ρ",
                h.name(),
                report.achieved_throughput
            );
        }
    }
}

#[test]
fn engine_respects_the_analytic_bound() {
    for seed in 0..3u64 {
        let inst = paper_instance(30, 0.9, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let sol = solve(&CompGreedy, &inst, &mut rng, &PipelineOptions::default()).unwrap();
        let bound = max_throughput(&inst, &sol.mapping);
        let report = simulate(&inst, &sol.mapping, &SimConfig::default()).unwrap();
        assert!(
            report.achieved_throughput <= bound * TOL,
            "seed {seed}: measured {:.3} > bound {:.3}",
            report.achieved_throughput,
            bound
        );
    }
}

#[test]
fn left_deep_chains_pipeline_correctly() {
    let inst = snsp_gen::generate(&ScenarioParams::paper(20, 1.0), TreeShape::LeftDeep, 5);
    let mut rng = StdRng::seed_from_u64(5);
    let sol = solve(
        &SubtreeBottomUp,
        &inst,
        &mut rng,
        &PipelineOptions::default(),
    )
    .unwrap();
    let report = simulate(&inst, &sol.mapping, &SimConfig::default()).unwrap();
    assert!(report.achieved_throughput >= inst.rho * 0.95);
    // Completion times must be strictly increasing past warm-up.
    let times = &report.completion_times;
    assert!(times.windows(2).all(|w| w[1] >= w[0]));
}

#[test]
fn bigger_buffers_never_slow_the_pipeline() {
    let inst = paper_instance(25, 1.2, 6);
    let mut rng = StdRng::seed_from_u64(6);
    let sol = solve(&CommGreedy, &inst, &mut rng, &PipelineOptions::default()).unwrap();
    let shallow = simulate(
        &inst,
        &sol.mapping,
        &SimConfig {
            buffer: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let deep = simulate(
        &inst,
        &sol.mapping,
        &SimConfig {
            buffer: 8,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        deep.achieved_throughput >= shallow.achieved_throughput * 0.99,
        "deep {:.3} < shallow {:.3}",
        deep.achieved_throughput,
        shallow.achieved_throughput
    );
}

#[test]
fn single_operator_application_runs_at_cpu_speed() {
    // One operator, two objects, one processor: throughput = s/w exactly.
    let inst = paper_instance(1, 1.0, 7);
    let mut rng = StdRng::seed_from_u64(7);
    let sol = solve(&CompGreedy, &inst, &mut rng, &PipelineOptions::default()).unwrap();
    let kind = inst.platform.catalog.kind(sol.mapping.proc_kinds[0]);
    let expected = kind.speed / inst.tree.work(inst.tree.root());
    let report = simulate(&inst, &sol.mapping, &SimConfig::default()).unwrap();
    let rel = (report.achieved_throughput - expected).abs() / expected;
    assert!(
        rel < 0.02,
        "measured {} vs expected {expected}",
        report.achieved_throughput
    );
}

#[test]
fn exact_solver_mappings_also_run() {
    let inst = paper_instance(8, 1.2, 8);
    let exact = solve_exact(&inst, &BranchBoundConfig::default());
    let mapping = exact.mapping.expect("feasible");
    let report = simulate(&inst, &mapping, &SimConfig::default()).unwrap();
    assert!(report.achieved_throughput >= inst.rho * 0.95);
}
