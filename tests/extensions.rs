//! Integration tests for the future-work extensions: tree rewriting,
//! multi-application placement and budgeted throughput.

use rand::rngs::StdRng;
use rand::SeedableRng;
use snsp::prelude::*;
use snsp_core::rewrite::total_intermediate_size;

#[test]
fn huffman_rewrite_never_increases_intermediate_traffic() {
    for seed in 0..5u64 {
        let inst = paper_instance(40, 1.5, seed);
        let model = WorkModel::paper(1.5);
        let huffman = rewrite(
            &inst.tree,
            &inst.objects,
            &model,
            RewriteStrategy::HuffmanBySize,
        );
        assert!(
            total_intermediate_size(&huffman) <= total_intermediate_size(&inst.tree) + 1e-6,
            "seed {seed}"
        );
        // The rewritten tree is a valid instance over the same platform.
        let variant = Instance::new(
            huffman,
            inst.objects.clone(),
            inst.platform.clone(),
            inst.rho,
        )
        .unwrap();
        assert!(variant.validate().is_ok());
    }
}

#[test]
fn rewritten_instances_map_feasibly_when_the_original_does() {
    for seed in 0..3u64 {
        let inst = paper_instance(30, 1.5, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let Ok(original) = solve(
            &SubtreeBottomUp,
            &inst,
            &mut rng,
            &PipelineOptions::default(),
        ) else {
            continue;
        };
        let model = WorkModel::paper(1.5);
        let huffman = rewrite(
            &inst.tree,
            &inst.objects,
            &model,
            RewriteStrategy::HuffmanBySize,
        );
        let variant = Instance::new(
            huffman,
            inst.objects.clone(),
            inst.platform.clone(),
            inst.rho,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rewritten = solve(
            &SubtreeBottomUp,
            &variant,
            &mut rng,
            &PipelineOptions::default(),
        )
        .expect("huffman shape is easier, never harder");
        assert!(is_feasible(&variant, &rewritten.mapping));
        // Not asserted ≤ in general (heuristic noise), but it should
        // never be catastrophically worse.
        assert!(rewritten.cost <= original.cost * 3);
    }
}

#[test]
fn rewritten_mappings_run_in_the_engine() {
    let inst = paper_instance(25, 1.4, 9);
    let model = WorkModel::paper(1.4);
    let tree = rewrite(&inst.tree, &inst.objects, &model, RewriteStrategy::Balanced);
    let variant = Instance::new(tree, inst.objects.clone(), inst.platform.clone(), 1.0).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let sol = solve(&CommGreedy, &variant, &mut rng, &PipelineOptions::default()).unwrap();
    let report = simulate(&variant, &sol.mapping, &SimConfig::default()).unwrap();
    assert!(report.achieved_throughput >= 0.95);
}

fn shared_apps(n_apps: usize, n_ops: usize, seed: u64) -> MultiInstance {
    let base = paper_instance(n_ops, 1.2, seed);
    let apps = (0..n_apps as u64)
        .map(|k| {
            let donor = paper_instance(n_ops, 1.2, seed * 37 + k + 1);
            Instance::new(
                donor.tree.clone(),
                base.objects.clone(),
                base.platform.clone(),
                1.0,
            )
            .unwrap()
        })
        .collect();
    MultiInstance::new(apps).unwrap()
}

#[test]
fn joint_placement_beats_separate_platforms() {
    for seed in 1..4u64 {
        let multi = shared_apps(3, 15, seed);
        let mut separate = 0u64;
        for app in &multi.apps {
            let mut rng = StdRng::seed_from_u64(seed);
            separate += solve(&SubtreeBottomUp, app, &mut rng, &PipelineOptions::default())
                .unwrap()
                .cost;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let joint = solve_joint(
            &multi,
            &SubtreeBottomUp,
            &mut rng,
            &PipelineOptions::default(),
        )
        .unwrap();
        assert!(
            joint.cost <= separate,
            "seed {seed}: {} > {separate}",
            joint.cost
        );
        // Every app's projection covers its operators and downloads.
        for k in 0..multi.apps.len() {
            let mapping = joint.mapping_for(&multi, k);
            assert_eq!(mapping.assignment.len(), multi.apps[k].tree.len());
        }
    }
}

#[test]
fn joint_solutions_verify_under_aggregate_constraints() {
    let multi = shared_apps(4, 12, 2);
    let mut rng = StdRng::seed_from_u64(2);
    let joint = solve_joint(
        &multi,
        &SubtreeBottomUp,
        &mut rng,
        &PipelineOptions::default(),
    )
    .unwrap();
    assert!(snsp_core::multi::verify_joint(&multi, &joint).is_ok());
    // Cost bookkeeping is consistent.
    let recomputed: u64 = joint
        .proc_kinds
        .iter()
        .map(|&k| multi.apps[0].platform.catalog.kind(k).cost)
        .sum();
    assert_eq!(joint.cost, recomputed);
}

#[test]
fn budget_throughput_is_monotone_in_budget() {
    let inst = paper_instance(20, 1.2, 4);
    let mut last = 0.0;
    for budget in [8_000u64, 25_000, 80_000] {
        if let Some(res) = max_throughput_under_budget(&inst, &SubtreeBottomUp, budget, 0.02, 0) {
            assert!(
                res.rho >= last * 0.98,
                "budget {budget}: ρ {} < previous {last}",
                res.rho
            );
            assert!(res.solution.cost <= budget);
            last = res.rho;
        }
    }
    assert!(last > 0.0, "some budget must be serviceable");
}
