//! Cross-checks between the exact solver, the heuristics and the bounds.

use rand::rngs::StdRng;
use rand::SeedableRng;
use snsp::prelude::*;
use snsp_solver::solve_exhaustive;

#[test]
fn exact_cost_is_sandwiched_between_bound_and_heuristics() {
    for seed in 0..4u64 {
        for &(n, alpha) in &[(6usize, 0.9), (9, 1.3), (12, 1.6)] {
            let inst = paper_instance(n, alpha, seed);
            let exact = solve_exact(&inst, &BranchBoundConfig::default());
            assert!(exact.optimal, "N={n} should be exhaustively searchable");
            let Some(mapping) = &exact.mapping else {
                continue;
            };
            assert!(is_feasible(&inst, mapping), "exact mapping must verify");
            assert!(exact.cost >= lower_bound(&inst).value());
            for h in all_heuristics() {
                let mut rng = StdRng::seed_from_u64(seed);
                if let Ok(sol) = solve(h.as_ref(), &inst, &mut rng, &PipelineOptions::default()) {
                    assert!(
                        exact.cost <= sol.cost,
                        "exact {} > {} {} (N={n} α={alpha} seed={seed})",
                        exact.cost,
                        h.name(),
                        sol.cost
                    );
                }
            }
        }
    }
}

#[test]
fn heuristic_upper_bound_never_changes_the_optimum() {
    for seed in 0..3u64 {
        let inst = paper_instance(8, 1.2, seed);
        let free = solve_exact(&inst, &BranchBoundConfig::default());
        // Seed the search with the best heuristic cost.
        let mut ub = None;
        for h in all_heuristics() {
            let mut rng = StdRng::seed_from_u64(seed);
            if let Ok(sol) = solve(h.as_ref(), &inst, &mut rng, &PipelineOptions::default()) {
                ub = Some(ub.map_or(sol.cost, |u: u64| u.min(sol.cost)));
            }
        }
        let seeded = solve_exact(
            &inst,
            &BranchBoundConfig {
                upper_bound: ub.map(|u| u + 1),
                ..Default::default()
            },
        );
        assert_eq!(free.cost, seeded.cost, "seed {seed}");
        assert!(seeded.nodes <= free.nodes);
    }
}

#[test]
fn exhaustive_and_budgeted_search_agree_on_tiny_instances() {
    for seed in 0..3u64 {
        let inst = paper_instance(7, 1.4, seed);
        let a = solve_exhaustive(&inst);
        let b = solve_exact(&inst, &BranchBoundConfig::default());
        assert!(a.optimal && b.optimal);
        assert_eq!(a.cost, b.cost);
    }
}

#[test]
fn subtree_bottom_up_matches_optimum_on_homogeneous_instances() {
    // The paper's headline claim for the CONSTR-HOM comparison. Count how
    // often Subtree-Bottom-Up hits the exact optimum over a batch.
    let mut hits = 0;
    let mut total = 0;
    for seed in 0..6u64 {
        let mut inst = paper_instance(10, 1.0, seed);
        inst.platform.catalog = Catalog::homogeneous(0, 0);
        let exact = solve_exact(&inst, &BranchBoundConfig::default());
        let Some(_) = exact.mapping else { continue };
        let mut rng = StdRng::seed_from_u64(seed);
        let opts = PipelineOptions {
            downgrade: false,
            ..Default::default()
        };
        if let Ok(sol) = solve(&SubtreeBottomUp, &inst, &mut rng, &opts) {
            total += 1;
            if sol.cost == exact.cost {
                hits += 1;
            }
        }
    }
    assert!(
        total >= 4,
        "expected most homogeneous instances to be solvable"
    );
    assert!(
        hits * 2 >= total,
        "Subtree-Bottom-Up should match the optimum in most cases ({hits}/{total})"
    );
}

#[test]
fn ilp_formulation_agrees_with_instance_shape() {
    use snsp_solver::{formulate, IlpOptions};
    let inst = paper_instance(8, 0.9, 1);
    let ilp = formulate(&inst, &IlpOptions::default());
    let n = inst.tree.len();
    let kinds = inst.platform.catalog.len();
    // y variables: one per (slot, kind); x: one per (op, slot).
    let y_count = ilp.binaries.iter().filter(|v| v.starts_with("y_")).count();
    let x_count = ilp.binaries.iter().filter(|v| v.starts_with("x_")).count();
    assert_eq!(y_count, n * kinds);
    assert_eq!(x_count, n * n);
    // One assignment constraint per operator.
    let assigns = ilp
        .constraints
        .iter()
        .filter(|c| c.name.starts_with("assign_"))
        .count();
    assert_eq!(assigns, n);
}
