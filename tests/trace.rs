//! Integration tests for the causal trace layer: the Det-class event
//! stream — and the `TRACE.json` (schema v7) rendered from it — must be
//! byte-identical at every worker count on **both** pool axes (the
//! campaign pool and the per-replay tick-batch pool), crash re-replay
//! under chaos must collapse to the same stream, and the Chrome
//! `trace_event` timeline must nest every Det instant inside exactly one
//! tick span of its run.

use std::collections::BTreeMap;
use std::sync::Mutex;

use snsp::prelude::*;
use snsp::sweep::{chrome_trace_json, trace_json, validate_trace_report, Json};
use snsp::telemetry::trace::{self, TraceSnapshot};

/// The trace layer is process-global state; captures must not overlap
/// across this binary's test threads.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn capture_trace<R>(f: impl FnOnce() -> R) -> (R, TraceSnapshot) {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::start(trace::DEFAULT_CAPACITY, false);
    let out = f();
    (out, trace::stop())
}

/// Mirrors the `sharded-ci` grid, with both pool axes independently
/// tunable: `workers` drives the campaign pool, `replay_workers` the
/// per-tick shard batches inside each replay.
fn serve_campaign(workers: usize, replay_workers: usize) -> ServeCampaign {
    let points = vec![
        ServePoint::new("calm", TraceParams::poisson(0.6, 5.0, 20.0)),
        ServePoint::new(
            "flaky",
            TraceParams::poisson(0.8, 5.0, 20.0).with_failures(0.1),
        ),
    ];
    ServeCampaign::new("trace-int", points, 2)
        .with_shards(4, replay_workers)
        .with_workers(workers)
}

/// The headline contract: the Det event stream and its schema-v7
/// rendering never move when either pool is resized.
#[test]
fn det_stream_and_trace_json_are_identical_at_every_worker_count() {
    let (_, base) = capture_trace(|| run_serve_campaign(&serve_campaign(1, 1)));
    assert_eq!(base.dropped, 0, "ring must not overflow in CI-sized runs");
    let base_lines = base.det_lines();
    assert!(
        base_lines.iter().any(|l| l.contains("admit")),
        "admissions must reach the trace"
    );
    assert!(
        base_lines.iter().any(|l| l.contains("msg_fold")),
        "barrier folds must reach the trace"
    );
    let base_json = trace_json(&base, "trace-int").render();
    validate_trace_report(&base_json).expect("rendered TRACE.json validates as schema v7");

    for (workers, replay_workers) in [(2, 1), (4, 1), (1, 2), (1, 4), (4, 4)] {
        let (_, snap) =
            capture_trace(|| run_serve_campaign(&serve_campaign(workers, replay_workers)));
        let at = format!("{workers} campaign workers, {replay_workers} replay workers");
        assert_eq!(snap.dropped, 0, "{at}");
        assert_eq!(base_lines, snap.det_lines(), "{at}: det stream diverged");
        assert_eq!(
            base_json,
            trace_json(&snap, "trace-int").render(),
            "{at}: TRACE.json bytes diverged"
        );
    }
}

/// Chaos replay records crash/restore markers once, collapses the
/// re-replayed duplicates, and stays worker-count-independent.
#[test]
fn chaos_det_stream_survives_crash_recovery_at_every_worker_count() {
    let trace_in = generate_trace(&TraceParams::poisson(0.7, 5.0, 25.0).with_failures(0.1), 29);
    let spec = FaultSpec::seeded(43)
        .with_crashes(0.3)
        .with_msg_faults(0.1, 0.05, 0.05)
        .with_retry(RetryPolicy::standard())
        .with_ticks(2.0);
    let plan = FaultPlan::instantiate(&spec, trace_in.params.horizon);
    assert!(plan.crash_count() > 0, "the plan must inject crashes");
    let run = |workers: usize| {
        let opts = ShardOptions { shards: 4, workers };
        capture_trace(|| replay_trace_chaos(&trace_in, &ServeConfig::default(), &opts, &plan)).1
    };
    let base = run(1);
    let lines = base.det_lines();
    assert!(
        lines.iter().any(|l| l.contains("crash")),
        "crash markers recorded"
    );
    assert!(
        lines.iter().any(|l| l.contains("restore")),
        "restore markers recorded"
    );
    // Re-replay after a crash re-records the recovered batch; the Det
    // stream must carry each event once.
    let det = base.det_events();
    assert!(
        det.windows(2)
            .all(|w| !(w[0].run == w[1].run && w[0].time == w[1].time && w[0].kind == w[1].kind)),
        "adjacent duplicates must be collapsed"
    );
    for workers in [2usize, 4] {
        assert_eq!(
            lines,
            run(workers).det_lines(),
            "{workers} replay workers diverged"
        );
    }
}

/// Structural check on the Chrome export: every event carries the
/// required `trace_event` keys, tick spans per run never overlap, and
/// every Det instant falls inside exactly one tick span of its run.
#[test]
fn chrome_timeline_nests_det_instants_inside_tick_spans() {
    let (_, snap) = capture_trace(|| run_serve_campaign(&serve_campaign(2, 2)));
    let doc = chrome_trace_json(&snap);
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Shard lanes sit far below the coordinator/overlay lanes.
    const COORDINATOR_TID: i64 = 1_000_000;
    let mut spans: BTreeMap<i64, Vec<(f64, f64)>> = BTreeMap::new();
    let mut det_instants: Vec<(i64, f64)> = Vec::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        let ts = e.get("ts").and_then(Json::as_num).expect("ts");
        let pid = e.get("pid").and_then(Json::as_int).expect("pid");
        let tid = e.get("tid").and_then(Json::as_int).expect("tid");
        assert!(e.get("name").and_then(Json::as_str).is_some(), "name");
        match ph {
            "X" => {
                let dur = e.get("dur").and_then(Json::as_num).expect("span dur");
                assert!(dur > 0.0, "spans must have positive duration");
                assert_eq!(tid, COORDINATOR_TID, "tick spans live on the coordinator");
                spans.entry(pid).or_default().push((ts, ts + dur));
            }
            "i" => {
                assert_eq!(e.get("s").and_then(Json::as_str), Some("t"));
                if tid < COORDINATOR_TID {
                    det_instants.push((pid, ts));
                }
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(!spans.is_empty(), "tick spans present");
    assert!(!det_instants.is_empty(), "det instants present");
    for intervals in spans.values_mut() {
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert!(
            intervals.windows(2).all(|w| w[0].1 <= w[1].0),
            "tick spans of one run must not overlap"
        );
    }
    for &(pid, ts) in &det_instants {
        let covering = spans.get(&pid).map_or(0, |iv| {
            iv.iter().filter(|(s, e)| *s <= ts && ts <= *e).count()
        });
        assert_eq!(
            covering, 1,
            "a det instant at pid={pid} ts={ts} must sit inside exactly one tick span"
        );
    }
}
