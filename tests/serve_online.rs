//! Integration tests for the online serving subsystem (`snsp-serve`):
//! deterministic replay, campaign byte-stability across worker counts,
//! and engine validation of every admitted tenant's platform snapshot.

use snsp::prelude::*;

fn flaky_params() -> TraceParams {
    TraceParams::poisson(0.4, 6.0, 30.0).with_failures(0.1)
}

/// The same trace + seed must reproduce the identical event log and the
/// identical metrics, run after run.
#[test]
fn replay_is_deterministic() {
    let trace = generate_trace(&flaky_params(), 17);
    let a = run_trace(&trace, &ServeConfig::default());
    let b = run_trace(&trace, &ServeConfig::default());
    assert_eq!(a.log, b.log);
    assert_eq!(a.admitted, b.admitted);
    assert_eq!(a.final_cost, b.final_cost);
    assert!((a.cost_time_integral - b.cost_time_integral).abs() < 1e-9);
    assert_eq!(a.log_hash(), b.log_hash());
}

/// Service metrics behave: admissions dominate a lightly-loaded trace,
/// the books balance, and the platform actually costs money over time.
#[test]
fn service_metrics_are_sane() {
    let trace = generate_trace(&TraceParams::poisson(0.4, 6.0, 30.0), 23);
    let report = run_trace(&trace, &ServeConfig::default());
    assert_eq!(report.arrivals, trace.arrivals());
    assert_eq!(report.admitted + report.rejected, report.arrivals);
    assert!(
        report.admission_rate() > 0.5,
        "light load should mostly admit: {:.2}",
        report.admission_rate()
    );
    assert!(report.cost_time_integral > 0.0, "the platform is paid for");
    assert!(report.peak_cost >= report.final_cost);
    assert!(report.mean_utilization > 0.0 && report.mean_utilization <= 1.0 + 1e-9);
}

/// The acceptance bar: with spot checks on every admission plus the
/// final sweep, every admitted tenant's projection of the shared
/// platform snapshot must sustain ≥ 0.95·ρ in the fluid engine.
#[test]
fn every_admitted_tenant_passes_engine_validation() {
    let config = ServeConfig {
        spot_admissions: 1,
        final_validation: true,
        ..Default::default()
    };
    for seed in [1u64, 9] {
        let trace = generate_trace(&flaky_params(), seed);
        let report = run_trace(&trace, &config);
        assert!(report.admitted > 0, "seed {seed} admitted nobody");
        assert!(report.slo_checks > 0);
        assert_eq!(
            report.slo_violations, 0,
            "seed {seed}: an admitted tenant missed 0.95·ρ in the engine"
        );
    }
}

/// The live platform's snapshot verifies jointly, and its per-tenant
/// projections pass the engine hook directly (the same check the serving
/// loop spot-runs).
#[test]
fn snapshots_verify_jointly_and_per_tenant() {
    let params = TraceParams::poisson(0.5, 8.0, 25.0);
    let (objects, platform) = trace_environment(&params, 31);
    let trace = generate_trace(&params, 31);
    let mut live = LivePlatform::new(objects.clone(), platform.clone());
    let mut admitted = 0u32;
    for ev in &trace.events {
        if let TraceEvent::Arrive { tenant, spec, .. } = ev.event {
            let inst = tenant_instance(&objects, &platform, &spec);
            if live
                .admit(
                    tenant,
                    inst,
                    &SubtreeBottomUp,
                    7 + tenant.0 as u64,
                    &PipelineOptions::default(),
                )
                .is_ok()
            {
                admitted += 1;
            }
            if admitted == 4 {
                break;
            }
        }
    }
    assert!(admitted >= 2, "need at least two co-resident tenants");
    let (multi, sol) = live.snapshot().expect("tenants are resident");
    verify_joint(&multi, &sol).expect("joint constraints hold");
    for (k, app) in multi.apps.iter().enumerate() {
        let mapping = sol.mapping_for(&multi, k);
        let report = meets_slo(app, &mapping, 0.95, &SimConfig::default())
            .unwrap_or_else(|e| panic!("tenant {k} failed engine validation: {e}"));
        assert!(report.achieved_throughput >= 0.95 * app.rho);
    }
}

/// Campaign JSON (stable form) is byte-identical at every worker count,
/// and validates against schema v2.
#[test]
fn serve_campaign_is_worker_count_independent() {
    let build = |workers: usize| {
        let points = vec![
            ServePoint::new("calm", TraceParams::poisson(0.3, 5.0, 20.0)),
            ServePoint::new("flaky", flaky_params()),
        ];
        ServeCampaign::new("itest", points, 2).with_workers(workers)
    };
    let serial = run_serve_campaign(&build(1)).render_json(false);
    validate_serve_report(&serial).expect("schema v2 validates");
    for workers in [2usize, 4] {
        let parallel = run_serve_campaign(&build(workers)).render_json(false);
        assert_eq!(serial, parallel, "{workers} workers diverged byte-wise");
    }
}
